"""Tests for episode tracking and the paper's duration accounting."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.detector import DailyConflict
from repro.core.episodes import EpisodeTracker
from repro.netbase.prefix import Prefix

P1 = Prefix.parse("10.0.0.0/8")
P2 = Prefix.parse("192.0.2.0/24")
START = datetime.date(1997, 11, 8)


def day(offset: int) -> datetime.date:
    return START + datetime.timedelta(days=offset)


def conflict(prefix: Prefix, *origins: int) -> DailyConflict:
    return DailyConflict(prefix=prefix, origins=frozenset(origins or (1, 2)))


class TestTracking:
    def test_single_day_episode(self):
        tracker = EpisodeTracker()
        tracker.observe_day(day(0), [conflict(P1)])
        episodes = tracker.finalize()
        episode = episodes[P1]
        assert episode.days_observed == 1
        assert episode.one_time
        assert episode.first_day == episode.last_day == day(0)

    def test_continuous_episode(self):
        tracker = EpisodeTracker()
        for offset in range(5):
            tracker.observe_day(day(offset), [conflict(P1)])
        episode = tracker.finalize()[P1]
        assert episode.days_observed == 5
        assert not episode.one_time

    def test_discontinuous_days_merge_per_prefix(self):
        # The paper merges all of a prefix's conflict days into one
        # record, regardless of gaps or different origin sets.
        tracker = EpisodeTracker()
        tracker.observe_day(day(0), [conflict(P1, 1, 2)])
        tracker.observe_day(day(1), [])
        tracker.observe_day(day(50), [conflict(P1, 3, 4)])
        episode = tracker.finalize()[P1]
        assert episode.days_observed == 2
        assert episode.first_day == day(0)
        assert episode.last_day == day(50)
        assert episode.origins_ever == {1, 2, 3, 4}

    def test_max_origins_single_day(self):
        tracker = EpisodeTracker()
        tracker.observe_day(day(0), [conflict(P1, 1, 2, 3)])
        tracker.observe_day(day(1), [conflict(P1, 1, 2)])
        assert tracker.finalize()[P1].max_origins_single_day == 3

    def test_multiple_prefixes_tracked_independently(self):
        tracker = EpisodeTracker()
        tracker.observe_day(day(0), [conflict(P1), conflict(P2)])
        tracker.observe_day(day(1), [conflict(P1)])
        episodes = tracker.finalize()
        assert episodes[P1].days_observed == 2
        assert episodes[P2].days_observed == 1
        assert len(tracker) == 2

    def test_out_of_order_days_rejected(self):
        tracker = EpisodeTracker()
        tracker.observe_day(day(5), [conflict(P1)])
        with pytest.raises(ValueError, match="increasing order"):
            tracker.observe_day(day(4), [conflict(P1)])

    def test_duplicate_day_rejected(self):
        tracker = EpisodeTracker()
        tracker.observe_day(day(5), [conflict(P1)])
        with pytest.raises(ValueError, match="increasing order"):
            tracker.observe_day(day(5), [conflict(P1)])


class TestOngoing:
    def test_ongoing_at_default_end(self):
        tracker = EpisodeTracker()
        tracker.observe_day(day(0), [conflict(P1), conflict(P2)])
        tracker.observe_day(day(1), [conflict(P1)])
        episodes = tracker.finalize()
        assert episodes[P1].ongoing
        assert not episodes[P2].ongoing

    def test_ongoing_with_explicit_last_day(self):
        tracker = EpisodeTracker()
        tracker.observe_day(day(0), [conflict(P1)])
        episodes = tracker.finalize(last_observed_day=day(9))
        assert not episodes[P1].ongoing


class TestEpisodeInvariants:
    @given(
        st.lists(
            st.lists(st.booleans(), min_size=2, max_size=2),
            min_size=1,
            max_size=60,
        )
    )
    def test_duration_equals_days_present(self, presence):
        """Invariant: days_observed == number of days fed with the prefix."""
        tracker = EpisodeTracker()
        for offset, (p1_present, p2_present) in enumerate(presence):
            conflicts = []
            if p1_present:
                conflicts.append(conflict(P1))
            if p2_present:
                conflicts.append(conflict(P2))
            tracker.observe_day(day(offset), conflicts)
        episodes = tracker.finalize()
        expected_p1 = sum(1 for p1, _ in presence if p1)
        expected_p2 = sum(1 for _, p2 in presence if p2)
        if expected_p1:
            assert episodes[P1].days_observed == expected_p1
        else:
            assert P1 not in episodes
        if expected_p2:
            assert episodes[P2].days_observed == expected_p2

    @given(
        st.lists(st.booleans(), min_size=1, max_size=60),
    )
    def test_ongoing_iff_present_on_last_fed_day(self, presence):
        tracker = EpisodeTracker()
        for offset, present in enumerate(presence):
            tracker.observe_day(
                day(offset), [conflict(P1)] if present else []
            )
        episodes = tracker.finalize()
        if not any(presence):
            assert P1 not in episodes
            return
        # finalize() without argument marks ongoing relative to the
        # last day fed, so P1 is ongoing iff present on that day.
        assert episodes[P1].ongoing == presence[-1]

    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    def test_first_last_bracket_duration(self, presence):
        tracker = EpisodeTracker()
        for offset, present in enumerate(presence):
            tracker.observe_day(
                day(offset), [conflict(P1)] if present else []
            )
        episodes = tracker.finalize()
        if P1 not in episodes:
            return
        episode = episodes[P1]
        span = (episode.last_day - episode.first_day).days + 1
        assert episode.days_observed <= span


class TestMerge:
    def test_disjoint_merge_equals_combined_feed(self):
        together = EpisodeTracker()
        only_p1 = EpisodeTracker()
        only_p2 = EpisodeTracker()
        for offset in range(4):
            p1_today = [conflict(P1, 1, 2)] if offset % 2 == 0 else []
            p2_today = [conflict(P2, 3, 4)] if offset < 3 else []
            together.observe_day(day(offset), p1_today + p2_today)
            only_p1.observe_day(day(offset), p1_today)
            only_p2.observe_day(day(offset), p2_today)
        merged = only_p1.merge(only_p2)
        assert merged.finalize() == together.finalize()
        assert len(merged) == len(together)

    def test_merge_does_not_mutate_inputs(self):
        left = EpisodeTracker()
        right = EpisodeTracker()
        left.observe_day(day(0), [conflict(P1)])
        right.observe_day(day(0), [conflict(P2)])
        merged = left.merge(right)
        merged.observe_day(day(1), [conflict(P1, 5, 6)])
        assert left.finalize()[P1].days_observed == 1
        assert len(right) == 1
        assert merged.finalize()[P1].days_observed == 2

    def test_merge_rejects_overlapping_prefixes(self):
        left = EpisodeTracker()
        right = EpisodeTracker()
        left.observe_day(day(0), [conflict(P1)])
        right.observe_day(day(0), [conflict(P1)])
        with pytest.raises(ValueError, match="overlapping"):
            left.merge(right)

    def test_merge_rejects_mismatched_days(self):
        left = EpisodeTracker()
        right = EpisodeTracker()
        left.observe_day(day(0), [conflict(P1)])
        right.observe_day(day(1), [conflict(P2)])
        with pytest.raises(ValueError, match="different days"):
            left.merge(right)

    def test_merged_tracker_keeps_feeding_in_order(self):
        left = EpisodeTracker()
        right = EpisodeTracker()
        left.observe_day(day(3), [conflict(P1)])
        right.observe_day(day(3), [conflict(P2)])
        merged = left.merge(right)
        with pytest.raises(ValueError, match="increasing order"):
            merged.observe_day(day(3), [conflict(P1)])
