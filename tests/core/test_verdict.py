"""Tests for the unified per-episode verdict engine."""

import datetime

import pytest

from repro.core.detector import DailyConflict, DayDetection
from repro.core.verdict import (
    KIND_ORGANIC,
    TAG_FLAPPING,
    TAG_FOREIGN_AGGREGATE,
    TAG_FOREIGN_SUBPREFIX,
    TAG_IXP,
    TAG_LONG_LIVED,
    TAG_ORIG_TRAN_AS,
    TAG_PRIVATE_ASN,
    TAG_SHORT_LIVED,
    TAG_WIDE_ORIGIN_SET,
    VerdictConfig,
    VerdictEngine,
)
from repro.netbase.prefix import Prefix
from repro.netbase.sharding import ShardSpec
from repro.scenario.archive import (
    FLAG_AS_SET_TAIL,
    FLAG_EXCHANGE_POINT,
    RegistryEntry,
)

DAY0 = datetime.date(1998, 1, 1)


def conflict(prefix: str, *origins: int, paths=None) -> DailyConflict:
    if paths is None:
        paths = {origin: ((origin + 100, origin),) for origin in origins}
    return DailyConflict(
        prefix=Prefix.parse(prefix),
        origins=frozenset(origins),
        paths_by_origin=tuple(sorted(paths.items())),
    )


def detection(day_offset: int, *conflicts: DailyConflict) -> DayDetection:
    return DayDetection(
        day=DAY0 + datetime.timedelta(days=day_offset),
        conflicts=tuple(conflicts),
        prefixes_scanned=1000,
        as_set_excluded=0,
    )


def feed_pattern(engine: VerdictEngine, prefix: str, pattern: str, **kw):
    """Feed one conflicted-prefix presence pattern ('x' = in conflict)."""
    for offset, mark in enumerate(pattern):
        if mark == "x":
            engine.feed_day(detection(offset, conflict(prefix, **kw) if kw
                                      else conflict(prefix, 1, 2)))
        else:
            engine.feed_day(detection(offset))


class TestTags:
    def test_short_lived_is_exact_hijack(self):
        engine = VerdictEngine()
        feed_pattern(engine, "10.0.0.0/8", "xxx" + "." * 47)
        verdict = engine.finalize()[Prefix.parse("10.0.0.0/8")]
        assert TAG_SHORT_LIVED in verdict.tags
        assert verdict.kind == "exact_hijack"
        assert not verdict.benign
        assert verdict.days_observed == 3

    def test_long_lived_organic_is_benign(self):
        engine = VerdictEngine()
        feed_pattern(engine, "10.0.0.0/8", "x" * 50)
        verdict = engine.finalize()[Prefix.parse("10.0.0.0/8")]
        assert TAG_LONG_LIVED in verdict.tags
        assert verdict.kind == KIND_ORGANIC
        assert verdict.benign

    def test_private_asn_origin_is_private_leak(self):
        engine = VerdictEngine()
        engine.feed_day(detection(0, conflict("10.0.0.0/8", 7, 64512)))
        verdict = engine.finalize()[Prefix.parse("10.0.0.0/8")]
        assert TAG_PRIVATE_ASN in verdict.tags
        assert verdict.kind == "private_leak"

    def test_ixp_prefix_wins_over_everything(self):
        engine = VerdictEngine()
        engine.feed_day(detection(0, conflict("198.32.1.0/24", 7, 64512)))
        verdict = engine.finalize()[Prefix.parse("198.32.1.0/24")]
        assert TAG_IXP in verdict.tags
        assert verdict.kind == "ixp_conflict"
        assert verdict.benign

    def test_wide_standing_conflict_is_anycast(self):
        engine = VerdictEngine()
        feed_pattern(engine, "10.0.0.0/8", "x" * 40 + "." * 10)
        # Re-feed with five origins to get the wide tag.
        wide = VerdictEngine()
        for offset in range(50):
            if offset < 40:
                wide.feed_day(
                    detection(offset, conflict("10.0.0.0/8", 1, 2, 3, 4, 5))
                )
            else:
                wide.feed_day(detection(offset))
        verdict = wide.finalize()[Prefix.parse("10.0.0.0/8")]
        assert TAG_WIDE_ORIGIN_SET in verdict.tags
        assert verdict.kind == "anycast"
        assert verdict.benign

    def test_flapping_pattern_detected(self):
        engine = VerdictEngine()
        feed_pattern(engine, "10.0.0.0/8", "x..x..x..x..x" + "." * 37)
        verdict = engine.finalize()[Prefix.parse("10.0.0.0/8")]
        assert TAG_FLAPPING in verdict.tags
        assert verdict.kind == "flapping_fault"

    def test_orig_tran_as_class_vote_tagged(self):
        paths = {1: ((9, 2, 1),), 2: ((9, 2),)}  # origin 2 transits for 1
        engine = VerdictEngine()
        for offset in range(40):
            engine.feed_day(
                detection(offset, conflict("10.0.0.0/8", 1, 2, paths=paths))
            )
        verdict = engine.finalize()[Prefix.parse("10.0.0.0/8")]
        assert TAG_ORIG_TRAN_AS in verdict.tags
        assert verdict.kind == KIND_ORGANIC

    def test_perpetrator_attribution_with_registry(self):
        engine = VerdictEngine()
        engine.feed_day(detection(0, conflict("10.0.0.0/8", 7, 666)))
        registry = [
            RegistryEntry(Prefix.parse("10.0.0.0/8"), owner=7,
                          created_day=0, flags=0)
        ]
        verdict = engine.finalize(registry=registry)[
            Prefix.parse("10.0.0.0/8")
        ]
        assert verdict.perpetrators == {666}


class TestStructuralShapes:
    def test_foreign_subprefix_flagged(self):
        registry = [
            RegistryEntry(Prefix.parse("20.0.0.0/8"), 7, 0, 0),
            RegistryEntry(Prefix.parse("20.1.0.0/16"), 666, 40, 0),
        ]
        verdicts = VerdictEngine().finalize(registry=registry)
        fragment = verdicts[Prefix.parse("20.1.0.0/16")]
        assert TAG_FOREIGN_SUBPREFIX in fragment.tags
        assert fragment.kind == "subprefix_hijack"
        assert not fragment.benign
        assert fragment.perpetrators == {666}
        assert Prefix.parse("20.0.0.0/8") not in verdicts

    def test_foreign_aggregate_flagged(self):
        registry = [
            RegistryEntry(Prefix.parse("20.1.0.0/16"), 7, 0, 0),
            RegistryEntry(Prefix.parse("20.0.0.0/8"), 666, 40, 0),
        ]
        verdicts = VerdictEngine().finalize(registry=registry)
        aggregate = verdicts[Prefix.parse("20.0.0.0/8")]
        assert TAG_FOREIGN_AGGREGATE in aggregate.tags
        assert aggregate.kind == "faulty_aggregation"

    def test_own_subprefix_not_flagged(self):
        registry = [
            RegistryEntry(Prefix.parse("20.0.0.0/8"), 7, 0, 0),
            RegistryEntry(Prefix.parse("20.1.0.0/16"), 7, 40, 0),
        ]
        assert VerdictEngine().finalize(registry=registry) == {}

    def test_as_set_and_ixp_registrations_skipped(self):
        registry = [
            RegistryEntry(Prefix.parse("20.1.0.0/16"), 7, 0, 0),
            RegistryEntry(
                Prefix.parse("20.0.0.0/8"), 8, 40, FLAG_AS_SET_TAIL
            ),
            RegistryEntry(
                Prefix.parse("198.32.5.0/24"), 9, 40, FLAG_EXCHANGE_POINT
            ),
        ]
        assert VerdictEngine().finalize(registry=registry) == {}

    def test_pre_study_nesting_ignored(self):
        registry = [
            RegistryEntry(Prefix.parse("20.0.0.0/8"), 7, 0, 0),
            RegistryEntry(Prefix.parse("20.1.0.0/16"), 8, 0, 0),
        ]
        assert VerdictEngine().finalize(registry=registry) == {}


class TestShardMerge:
    def _detections(self):
        prefixes = [f"10.{index}.0.0/16" for index in range(8)]
        days = []
        for offset in range(12):
            conflicts = [
                conflict(prefix, 1, 2 + offset % 3)
                for index, prefix in enumerate(prefixes)
                if (offset + index) % 2 == 0
            ]
            days.append(detection(offset, *conflicts))
        return days

    def test_merged_shards_equal_serial(self):
        days = self._detections()
        serial = VerdictEngine()
        shards = [
            VerdictEngine(shard=spec)
            for spec in ShardSpec.partition(3, "hash")
        ]
        for day in days:
            serial.feed_day(day)
            for engine in shards:
                engine.feed_day(day)
        merged = VerdictEngine.merged(shards)
        assert merged.total_days == serial.total_days
        assert merged.finalize() == serial.finalize()

    def test_merge_rejects_different_day_streams(self):
        left = VerdictEngine(shard=ShardSpec.partition(2, "hash")[0])
        right = VerdictEngine(shard=ShardSpec.partition(2, "hash")[1])
        left.feed_day(detection(0))
        with pytest.raises(ValueError, match="different day streams"):
            left.merge(right)

    def test_merge_rejects_overlapping_prefixes(self):
        left = VerdictEngine()
        right = VerdictEngine()
        left.feed_day(detection(0, conflict("10.0.0.0/8", 1, 2)))
        right.feed_day(detection(0, conflict("10.0.0.0/8", 1, 2)))
        with pytest.raises(ValueError, match="overlapping"):
            left.merge(right)

    def test_merge_rejects_different_configs(self):
        left = VerdictEngine(VerdictConfig(short_days=5))
        right = VerdictEngine(VerdictConfig(short_days=9))
        with pytest.raises(ValueError, match="configs"):
            left.merge(right)
