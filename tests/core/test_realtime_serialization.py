"""Alert JSON round-trips and the day-snapshot alert bridge.

The serve daemon's SSE stream speaks ``MoasAlert.to_dict()``; these
tests pin that wire contract (every :class:`AlertKind`, exact
round-trip) and the :class:`DaySnapshotAlerter` that derives streaming
alerts from daily detections.
"""

import datetime

import pytest

from repro.core.detector import DailyConflict, DayDetection
from repro.core.realtime import (
    AlertKind,
    DaySnapshotAlerter,
    MoasAlert,
    day_timestamp,
)
from repro.netbase.prefix import Prefix

PREFIX = Prefix.parse("10.0.0.0/8")


def make_alert(kind: AlertKind) -> MoasAlert:
    return MoasAlert(
        timestamp=879984000,  # 1997-11-20 00:00:00 UTC
        prefix=PREFIX,
        kind=kind,
        origins=frozenset({42, 43}),
        previous_origins=frozenset({42}),
        changed_origin=43,
    )


class TestAlertRoundTrip:
    @pytest.mark.parametrize("kind", list(AlertKind))
    def test_every_kind_round_trips(self, kind):
        alert = make_alert(kind)
        restored = MoasAlert.from_dict(alert.to_dict())
        assert restored == alert

    def test_dict_shape_is_json_plain(self):
        payload = make_alert(AlertKind.MOAS_ORIGIN_REMOVED).to_dict()
        assert payload == {
            "timestamp": 879984000,
            "day": "1997-11-20",
            "prefix": "10.0.0.0/8",
            "kind": "moas_origin_removed",
            "origins": [42, 43],
            "previous_origins": [42],
            "changed_origin": 43,
        }
        import json

        assert json.loads(json.dumps(payload)) == payload

    def test_origin_lists_are_sorted(self):
        alert = MoasAlert(
            timestamp=0,
            prefix=PREFIX,
            kind=AlertKind.MOAS_STARTED,
            origins=frozenset({9, 1, 5}),
            previous_origins=frozenset({5, 1}),
            changed_origin=9,
        )
        payload = alert.to_dict()
        assert payload["origins"] == [1, 5, 9]
        assert payload["previous_origins"] == [1, 5]

    def test_from_dict_missing_field_raises_value_error(self):
        payload = make_alert(AlertKind.MOAS_ENDED).to_dict()
        del payload["origins"]
        with pytest.raises(ValueError):
            MoasAlert.from_dict(payload)

    def test_from_dict_bad_kind_raises_value_error(self):
        payload = make_alert(AlertKind.MOAS_ENDED).to_dict()
        payload["kind"] = "moas_imploded"
        with pytest.raises(ValueError):
            MoasAlert.from_dict(payload)

    def test_day_timestamp_is_utc_midnight(self):
        assert day_timestamp(datetime.date(1997, 11, 20)) == 879984000
        assert day_timestamp(datetime.date(1970, 1, 1)) == 0


def detection(day: datetime.date, conflicts: dict) -> DayDetection:
    """A synthetic DayDetection from prefix -> origin-set pairs."""
    return DayDetection(
        day=day,
        conflicts=tuple(
            DailyConflict(prefix=prefix, origins=frozenset(origins))
            for prefix, origins in conflicts.items()
        ),
        prefixes_scanned=100,
        as_set_excluded=0,
    )


class TestDaySnapshotAlerter:
    DAYS = [datetime.date(1998, 1, 1) + datetime.timedelta(days=i)
            for i in range(6)]

    def test_full_lifecycle_covers_every_kind(self):
        alerter = DaySnapshotAlerter()
        feed = [
            {PREFIX: {1, 2}},       # started
            {PREFIX: {1, 2, 3}},    # origin added
            {PREFIX: {1, 3}},       # origin removed
            {},                     # ended
            {PREFIX: {5, 6}},       # started again
        ]
        kinds = []
        for day, conflicts in zip(self.DAYS, feed):
            for alert in alerter.feed_day(detection(day, conflicts)):
                kinds.append(alert.kind)
        assert kinds == [
            AlertKind.MOAS_STARTED,
            AlertKind.MOAS_ORIGIN_ADDED,
            AlertKind.MOAS_ORIGIN_REMOVED,
            AlertKind.MOAS_ENDED,
            AlertKind.MOAS_STARTED,
        ]
        assert alerter.alerts_emitted == 5
        assert alerter.current_conflicts() == [PREFIX]

    def test_alert_timestamps_are_day_midnights(self):
        alerter = DaySnapshotAlerter()
        day = self.DAYS[0]
        alerts = alerter.feed_day(detection(day, {PREFIX: {1, 2}}))
        assert [a.timestamp for a in alerts] == [day_timestamp(day)]
        assert alerts[0].to_dict()["day"] == day.isoformat()

    def test_unchanged_day_is_silent(self):
        alerter = DaySnapshotAlerter()
        alerter.feed_day(detection(self.DAYS[0], {PREFIX: {1, 2}}))
        assert alerter.feed_day(
            detection(self.DAYS[1], {PREFIX: {1, 2}})
        ) == []

    def test_ended_emitted_once_per_episode(self):
        alerter = DaySnapshotAlerter()
        alerter.feed_day(detection(self.DAYS[0], {PREFIX: {1, 2, 3}}))
        ended = alerter.feed_day(detection(self.DAYS[1], {}))
        kinds = [a.kind for a in ended]
        assert kinds.count(AlertKind.MOAS_ENDED) == 1
        # Nothing left to withdraw: the next empty day is silent.
        assert alerter.feed_day(detection(self.DAYS[2], {})) == []

    def test_multiple_prefixes_alert_independently(self):
        other = Prefix.parse("192.0.2.0/24")
        alerter = DaySnapshotAlerter()
        first = alerter.feed_day(
            detection(self.DAYS[0], {PREFIX: {1, 2}, other: {7, 8}})
        )
        assert sorted(str(a.prefix) for a in first) == [
            "10.0.0.0/8",
            "192.0.2.0/24",
        ]
        assert {a.kind for a in first} == {AlertKind.MOAS_STARTED}
        second = alerter.feed_day(
            detection(self.DAYS[1], {PREFIX: {1, 2}})
        )
        assert [a.kind for a in second] == [AlertKind.MOAS_ENDED]
        assert second[0].prefix == other

    def test_deterministic_across_runs(self):
        feed = [
            {PREFIX: {3, 1}},
            {PREFIX: {3, 1, 2}},
            {},
        ]

        def run():
            alerter = DaySnapshotAlerter()
            out = []
            for day, conflicts in zip(self.DAYS, feed):
                out.extend(
                    a.to_dict()
                    for a in alerter.feed_day(detection(day, conflicts))
                )
            return out

        assert run() == run()
