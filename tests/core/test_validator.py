"""Tests for the multi-signal conflict validator (Section VII extension)."""

import datetime

from repro.core.detector import DailyConflict
from repro.core.episodes import ConflictEpisode
from repro.core.validator import ConflictValidator, ValidatorConfig
from repro.netbase.prefix import Prefix

START = datetime.date(1998, 1, 1)


def episode(
    prefix: str,
    days: int,
    *,
    origins=(42, 43),
    span: int | None = None,
) -> ConflictEpisode:
    span = span if span is not None else days
    return ConflictEpisode(
        prefix=Prefix.parse(prefix),
        first_day=START,
        last_day=START + datetime.timedelta(days=span - 1),
        days_observed=days,
        origins_ever=frozenset(origins),
        max_origins_single_day=2,
        ongoing=False,
    )


class TestSignals:
    def test_exchange_point_is_valid(self):
        validator = ConflictValidator()
        verdict = validator.validate(episode("198.32.1.0/24", 2))
        assert verdict.valid
        assert any("exchange-point" in reason for reason in verdict.reasons)

    def test_private_asn_is_valid(self):
        validator = ConflictValidator()
        verdict = validator.validate(
            episode("10.0.0.0/16", 2, origins=(42, 64600))
        )
        assert verdict.valid

    def test_long_duration_leans_valid(self):
        validator = ConflictValidator()
        assert validator.validate(episode("10.0.0.0/16", 200)).valid

    def test_short_unknown_leans_invalid(self):
        validator = ConflictValidator()
        verdict = validator.validate(episode("10.0.0.0/16", 1))
        assert not verdict.valid

    def test_spike_membership_dominates(self):
        validator = ConflictValidator(
            spike_culprits={START: 8584}
        )
        # Long-ish duration but involves the spike culprit on the
        # spike day: invalid wins.
        verdict = validator.validate(
            episode("10.0.0.0/16", 4, origins=(42, 8584))
        )
        assert not verdict.valid
        assert any("mass-origination" in r for r in verdict.reasons)

    def test_spike_on_other_day_ignored(self):
        validator = ConflictValidator(
            spike_culprits={START + datetime.timedelta(days=400): 8584}
        )
        verdict = validator.validate(
            episode("10.0.0.0/16", 60, origins=(42, 8584))
        )
        assert verdict.valid

    def test_origin_adjacency_signal(self):
        validator = ConflictValidator()
        conflict = DailyConflict(
            prefix=Prefix.parse("10.0.0.0/16"),
            origins=frozenset({42, 43}),
            paths_by_origin=(
                (42, ((701, 42),)),
                (43, ((1239, 42, 43),)),  # 42 transits toward 43
            ),
        )
        verdict = validator.validate(
            episode("10.0.0.0/16", 5),
            observations={START: conflict},
        )
        assert any("adjacent" in reason for reason in verdict.reasons)
        assert verdict.valid

    def test_recurrence_signal(self):
        validator = ConflictValidator()
        # Present 10 days scattered over 100: a flapping policy.
        verdict = validator.validate(
            episode("10.0.0.0/16", 10, span=100)
        )
        assert any("recurs" in reason for reason in verdict.reasons)


class TestVerdictMechanics:
    def test_confidence_bounds(self):
        validator = ConflictValidator()
        for days in (1, 5, 50, 400):
            verdict = validator.validate(episode("10.0.0.0/16", days))
            assert 0.5 <= verdict.confidence <= 1.0

    def test_stronger_evidence_higher_confidence(self):
        validator = ConflictValidator()
        weak = validator.validate(episode("10.0.0.0/16", 31))
        strong = validator.validate(episode("198.32.1.0/24", 500))
        assert strong.confidence > weak.confidence

    def test_validate_all(self):
        validator = ConflictValidator()
        episodes = {
            Prefix.parse("10.0.0.0/16"): episode("10.0.0.0/16", 100),
            Prefix.parse("11.0.0.0/16"): episode("11.0.0.0/16", 1),
        }
        verdicts = validator.validate_all(episodes)
        assert verdicts[Prefix.parse("10.0.0.0/16")].valid
        assert not verdicts[Prefix.parse("11.0.0.0/16")].valid

    def test_from_case_studies(self):
        class FakeCase:
            def __init__(self, report):
                self.report = report

        from repro.core.causes import SpikeReport

        report = SpikeReport(
            day=START,
            total_conflicts=100,
            baseline_median=10.0,
            culprit_asn=8584,
            culprit_involved=95,
        )
        validator = ConflictValidator.from_case_studies([FakeCase(report)])
        assert validator.spike_culprits == {START: 8584}

    def test_custom_config(self):
        config = ValidatorConfig(duration_long_days=5)
        validator = ConflictValidator(config=config)
        assert validator.validate(episode("10.0.0.0/16", 6)).valid
