"""Test package: tests."""
