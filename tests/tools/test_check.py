"""Tests for ``repro check`` — framework, rule families, CLI.

The corpus assertions pin *exact* ``(rule, line, col)`` triples against
the known-bad files in ``tests/tools/corpus/``; editing a corpus file
must update the expectations here in the same commit.
"""

import json
from pathlib import Path

from repro.tools.check import (
    JSON_SCHEMA_VERSION,
    RULE_UNKNOWN_RULE,
    RULE_UNUSED_SUPPRESSION,
    Finding,
    main,
    render_json,
    run_check,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "tools" / "corpus"


def check_corpus(filename, rule, extra_options=None):
    """Run one rule over one corpus file, scoped to the corpus."""
    options = {"paths": ["tests/tools/corpus"]}
    options.update(extra_options or {})
    findings, _summary = run_check(
        [CORPUS / filename],
        root=REPO_ROOT,
        config={rule: options},
        rules=[rule],
    )
    return findings


def locations(findings):
    return [(f.rule, f.line, f.col) for f in findings]


class TestDeterminismCorpus:
    def test_every_violation_fires_at_its_pinned_location(self):
        findings = check_corpus("bad_determinism.py", "determinism")
        assert locations(findings) == [
            ("determinism", 12, 15),  # time.time()
            ("determinism", 13, 13),  # datetime.date.today()
            ("determinism", 14, 11),  # datetime.datetime.now()
            ("determinism", 19, 13),  # os.urandom()
            ("determinism", 20, 14),  # secrets.token_hex()
            ("determinism", 25, 9),  # random.random()
            ("determinism", 26, 9),  # from random import random
            ("determinism", 27, 16),  # unseeded random.Random()
            ("determinism", 34, 18),  # for over a set display
            ("determinism", 36, 27),  # genexp over set()
        ]

    def test_seeded_and_sorted_uses_pass(self):
        lines = {f.line for f in check_corpus("bad_determinism.py", "determinism")}
        assert 28 not in lines  # random.Random(42)
        assert 37 not in lines  # sorted(set(...))

    def test_suppression_comment_silences_the_finding(self):
        lines = {f.line for f in check_corpus("bad_determinism.py", "determinism")}
        assert 41 not in lines  # repro: ignore[determinism] on that line


class TestLockDisciplineCorpus:
    def test_every_violation_fires_at_its_pinned_location(self):
        findings = check_corpus("bad_lock.py", "lock-discipline")
        assert locations(findings) == [
            ("lock-discipline", 16, 20),  # read outside lock
            ("lock-discipline", 19, 9),  # write outside lock
            ("lock-discipline", 20, 9),  # second attr, same method
            ("lock-discipline", 29, 26),  # read after lock released
        ]
        assert "_table" in findings[0].message
        assert "_count" in findings[3].message

    def test_locked_access_and_init_pass(self):
        lines = {f.line for f in check_corpus("bad_lock.py", "lock-discipline")}
        assert not lines & {12, 13, 24, 28}


class TestMergeAlgebraCorpus:
    OPTIONS = {"registry": "tests/tools/corpus/registry.py"}

    def test_merge_without_checkpoint_and_unregistered_fire(self):
        findings = check_corpus("bad_merge.py", "merge-algebra", self.OPTIONS)
        assert locations(findings) == [
            ("merge-algebra", 4, 1),  # missing state_dict/from_state
            ("merge-algebra", 4, 1),  # and not registered
            ("merge-algebra", 14, 1),  # complete but unregistered
        ]
        assert "state_dict" in findings[0].message
        assert "MERGE_ALGEBRA_REGISTRY" in findings[2].message

    def test_registered_complete_class_passes(self):
        assert check_corpus("good_state.py", "merge-algebra", self.OPTIONS) == []


class TestHotPathCorpus:
    def test_every_violation_fires_at_its_pinned_location(self):
        findings = check_corpus("bad_hotpath.py", "hot-path")
        assert locations(findings) == [
            ("hot-path", 6, 1),  # class without __slots__
            ("hot-path", 20, 9),  # assignment outside declared slots
            ("hot-path", 34, 17),  # constructor call in hot loop
            ("hot-path", 35, 16),  # comprehension in hot loop
        ]

    def test_enum_exception_and_cold_functions_pass(self):
        lines = {f.line for f in check_corpus("bad_hotpath.py", "hot-path")}
        assert not lines & {24, 28, 42}


class TestWireSymmetryCorpus:
    def test_orphaned_read_keys_fire(self):
        findings = check_corpus("bad_wire.py", "wire-symmetry")
        assert locations(findings) == [("wire-symmetry", 15, 5)]
        assert "'label'" in findings[0].message
        assert "'weight'" in findings[0].message


class TestCheckpointSchemaSnapshot:
    """The cross-file CHECKPOINT_VERSION / snapshot contract."""

    STATE = (
        "class St:\n"
        "    __slots__ = ('a', 'b')\n"
        "    def merge(self, other):\n"
        "        return self\n"
        "    def state_dict(self):\n"
        "        return {'a': self.a, 'b': self.b}\n"
        "    @classmethod\n"
        "    def from_state(cls, state):\n"
        "        return cls()\n"
    )

    def project(self, tmp_path, *, keys=("a", "b"), version=1, snapshot=True):
        (tmp_path / "src" / "mypkg").mkdir(parents=True)
        (tmp_path / "src" / "mypkg" / "state.py").write_text(self.STATE)
        (tmp_path / "registry.py").write_text(
            "MERGE_ALGEBRA_REGISTRY = ('mypkg.state.St',)\n"
        )
        (tmp_path / "version.py").write_text("CHECKPOINT_VERSION = 1\n")
        if snapshot:
            (tmp_path / "schema.json").write_text(
                json.dumps(
                    {
                        "checkpoint_version": version,
                        "classes": {"mypkg.state.St": sorted(keys)},
                    }
                )
            )
        return tmp_path

    def run(self, root):
        findings, _ = run_check(
            [root / "src"],
            root=root,
            config={
                "wire-symmetry": {
                    "paths": [],
                    "registry": "registry.py",
                    "schema": "schema.json",
                    "version-source": "version.py",
                },
                "merge-algebra": {"paths": []},
            },
            rules=["wire-symmetry"],
        )
        return findings

    def test_matching_snapshot_passes(self, tmp_path):
        assert self.run(self.project(tmp_path)) == []

    def test_schema_change_without_version_bump_fires(self, tmp_path):
        root = self.project(tmp_path, keys=("a",), version=1)
        findings = self.run(root)
        assert [f.rule for f in findings] == ["wire-symmetry"]
        assert "CHECKPOINT_VERSION" in findings[0].message

    def test_stale_snapshot_after_version_bump_fires(self, tmp_path):
        root = self.project(tmp_path, keys=("a",), version=7)
        findings = self.run(root)
        assert [f.rule for f in findings] == ["wire-symmetry"]
        assert "--write-schema" in findings[0].message

    def test_missing_snapshot_fires(self, tmp_path):
        root = self.project(tmp_path, snapshot=False)
        findings = self.run(root)
        assert [f.rule for f in findings] == ["wire-symmetry"]
        assert "missing" in findings[0].message


class TestSuppressions:
    def run(self, tmp_path, source):
        (tmp_path / "mod.py").write_text(source)
        findings, _ = run_check(
            [tmp_path / "mod.py"],
            root=tmp_path,
            config={"determinism": {"paths": []}},
            rules=["determinism"],
        )
        return findings

    def test_used_suppression_produces_nothing(self, tmp_path):
        findings = self.run(
            tmp_path,
            "import time\n\nNOW = time.time()  # repro: ignore[determinism]\n",
        )
        assert findings == []

    def test_unused_suppression_is_itself_a_finding(self, tmp_path):
        findings = self.run(
            tmp_path, "VALUE = 1  # repro: ignore[determinism]\n"
        )
        assert locations(findings) == [(RULE_UNUSED_SUPPRESSION, 1, 1)]

    def test_unknown_rule_in_suppression_is_a_finding(self, tmp_path):
        findings = self.run(
            tmp_path, "VALUE = 1  # repro: ignore[made-up-rule]\n"
        )
        assert locations(findings) == [(RULE_UNKNOWN_RULE, 1, 1)]
        assert "made-up-rule" in findings[0].message

    def test_marker_inside_a_docstring_is_not_a_suppression(self, tmp_path):
        findings = self.run(
            tmp_path,
            '"""Docs quoting # repro: ignore[determinism] syntax."""\n'
            "import time\n\nNOW = time.time()\n",
        )
        assert locations(findings) == [("determinism", 4, 7)]

    def test_one_comment_can_name_several_rules(self, tmp_path):
        findings = self.run(
            tmp_path,
            "import time\n\n"
            "NOW = time.time()  # repro: ignore[determinism, hot-path]\n",
        )
        # determinism is consumed; hot-path did not run, so it is not
        # reported unused either.
        assert findings == []


class TestJsonOutput:
    def test_document_round_trips_through_finding_from_dict(self):
        findings, summary = run_check(
            [CORPUS / "bad_wire.py"],
            root=REPO_ROOT,
            config={"wire-symmetry": {"paths": ["tests/tools/corpus"]}},
            rules=["wire-symmetry"],
        )
        document = json.loads(render_json(findings, summary))
        assert document["schema_version"] == JSON_SCHEMA_VERSION
        assert document["tool"] == "repro-check"
        assert document["summary"]["findings"] == len(findings)
        restored = [Finding.from_dict(row) for row in document["findings"]]
        assert restored == findings

    def test_findings_are_sorted_and_fully_typed(self):
        findings, _ = run_check(
            [CORPUS],
            root=REPO_ROOT,
            config={
                "determinism": {"paths": ["tests/tools/corpus"]},
                "hot-path": {"paths": ["tests/tools/corpus"]},
            },
            rules=["determinism", "hot-path"],
        )
        rows = [f.to_dict() for f in findings]
        assert rows == sorted(
            rows, key=lambda r: (r["path"], r["line"], r["col"], r["rule"])
        )
        for row in rows:
            assert set(row) == {
                "rule", "severity", "path", "line", "col", "message",
            }


class TestCli:
    def test_src_tree_is_clean(self, capsys):
        """The acceptance gate: `repro check src` exits 0 on this tree."""
        assert main([str(REPO_ROOT / "src")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_1(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-check.determinism]\npaths = []\n"
        )
        (tmp_path / "bad.py").write_text("import time\nNOW = time.time()\n")
        assert main(["bad.py", "--rule", "determinism"]) == 1
        out = capsys.readouterr().out
        assert "bad.py:2:7: error[determinism]" in out

    def test_unknown_rule_id_exits_2(self, capsys):
        assert main(["--rule", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_format_emits_the_documented_schema(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-check.determinism]\npaths = []\n"
        )
        (tmp_path / "bad.py").write_text("import time\nNOW = time.time()\n")
        assert main(["bad.py", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == JSON_SCHEMA_VERSION
        assert [f["rule"] for f in document["findings"]] == ["determinism"]

    def test_severity_override_downgrades_exit_code(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-check.determinism]\n"
            "paths = []\n"
            'severity = "warning"\n'
        )
        (tmp_path / "bad.py").write_text("import time\nNOW = time.time()\n")
        assert main(["bad.py", "--rule", "determinism"]) == 0


class TestMutationsAreCaught:
    """Deleting the invariants from real sources must fail the check."""

    def run_mutated(self, tmp_path, source_rel, old, new, config):
        source = (REPO_ROOT / source_rel).read_text()
        assert old in source
        target = tmp_path / Path(source_rel).name
        target.write_text(source.replace(old, new, 1))
        findings, _ = run_check(
            [target], root=REPO_ROOT, config=config, rules=list(config)
        )
        return findings

    def test_removing_a_service_lock_fails(self, tmp_path):
        findings = self.run_mutated(
            tmp_path,
            "src/repro/api/service.py",
            "with self._lock:",
            "if True:",
            {"lock-discipline": {"paths": []}},
        )
        assert any(f.rule == "lock-discipline" for f in findings)

    def test_removing_detector_slots_fails(self, tmp_path):
        findings = self.run_mutated(
            tmp_path,
            "src/repro/core/detector.py",
            "@dataclass(frozen=True, slots=True, weakref_slot=True)",
            "@dataclass(frozen=True)",
            {"hot-path": {"paths": []}},
        )
        assert any(f.rule == "hot-path" for f in findings)
