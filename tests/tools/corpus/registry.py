"""Stand-in merge harness registry for the corpus runs."""

MERGE_ALGEBRA_REGISTRY = (
    "tests.tools.corpus.good_state.RegisteredState",
)
