"""Wire-symmetry violation: from_dict reads keys to_dict never writes."""


class LopsidedRecord:
    __slots__ = ("name", "value")

    def __init__(self, name, value):
        self.name = name
        self.value = value

    def to_dict(self):
        return {"name": self.name, "value": self.value}

    @classmethod
    def from_dict(cls, payload):  # line 15: reads 'label' and 'weight'
        return cls(payload["label"], payload.get("weight"))
