"""Merge-algebra violations: merge() without the rest of the contract."""


class MergeWithoutCheckpoint:  # line 4: no state_dict/from_state
    def __init__(self):
        self.items = []

    def merge(self, other):
        merged = MergeWithoutCheckpoint()
        merged.items = self.items + other.items
        return merged


class UnregisteredState:  # line 14: complete but not in the registry
    def __init__(self):
        self.items = []

    def merge(self, other):
        merged = UnregisteredState()
        merged.items = self.items + other.items
        return merged

    def state_dict(self):
        return {"items": list(self.items)}

    @classmethod
    def from_state(cls, state):
        instance = cls()
        instance.items = list(state["items"])
        return instance
