"""Lock-discipline violations against @guarded_by declarations."""

import threading

from repro.util.concurrency import guarded_by


@guarded_by("_lock", "_table", "_count")
class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = {}  # fine: __init__ is exempt
        self._count = 0

    def read_unlocked(self):
        return len(self._table)  # line 16: read outside the lock

    def write_unlocked(self, key, value):
        self._table[key] = value  # line 19: write outside the lock
        self._count += 1  # line 20: write outside the lock

    def read_locked(self):
        with self._lock:
            return dict(self._table)  # fine: under the lock

    def partially_locked(self):
        with self._lock:
            snapshot = dict(self._table)  # fine
        return snapshot, self._count  # line 29: read after release

    def suppressed(self):
        return self._count  # repro: ignore[lock-discipline]
