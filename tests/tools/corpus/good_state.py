"""A fully conforming mergeable state: the corpus control group."""


class RegisteredState:
    __slots__ = ("items",)

    def __init__(self):
        self.items = []

    def merge(self, other):
        merged = RegisteredState()
        merged.items = self.items + other.items
        return merged

    def state_dict(self):
        return {"items": list(self.items)}

    @classmethod
    def from_state(cls, state):
        instance = cls()
        instance.items = list(state["items"])
        return instance
