"""Hot-path hygiene violations: slots, slot integrity, loop allocation."""

import enum


class UnslottedRow:  # line 6: no __slots__
    def __init__(self, prefix, origin):
        self.prefix = prefix
        self.origin = origin


class LeakyRow:
    __slots__ = ("prefix", "origin")

    def __init__(self, prefix, origin):
        self.prefix = prefix
        self.origin = origin

    def annotate(self, note):
        self.note = note  # line 20: not a declared slot


class RowKind(enum.Enum):  # fine: Enum manages its own storage
    PLAIN = "plain"


class ScanError(ValueError):  # fine: exception types are exempt
    pass


def _scan_segments(rows):
    pairs = []
    for row in rows:
        entry = UnslottedRow(row, 0)  # line 34: constructed per row
        keys = [r for r in rows]  # line 35: comprehension in loop
        pairs.append((entry, keys))
    return pairs


def cold_helper(rows):
    # fine: not a designated hot function
    return [UnslottedRow(row, 0) for row in rows]
