"""Determinism violations: every flagged line is pinned by the tests."""

import datetime
import os
import random
import secrets
import time
from random import random as rnd


def stamp():
    started = time.time()  # line 12: wall clock
    today = datetime.date.today()  # line 13: wall clock
    now = datetime.datetime.now()  # line 14: wall clock
    return started, today, now


def entropy():
    token = os.urandom(8)  # line 19: OS entropy
    secret = secrets.token_hex(4)  # line 20: OS entropy
    return token, secret


def draws():
    a = random.random()  # line 25: global RNG
    b = rnd()  # line 26: global RNG via from-import
    unseeded = random.Random()  # line 27: unseeded Random
    seeded = random.Random(42)  # fine: seeded
    return a, b, unseeded, seeded


def leak_order(values):
    out = []
    for value in {3, 1, 2}:  # line 34: set display iteration
        out.append(value)
    out.extend(v for v in set(values))  # line 36: bare set() iteration
    ordered = [v for v in sorted(set(values))]  # fine: sorted
    return out, ordered


def suppressed():
    return time.time()  # repro: ignore[determinism]
