"""Tests for the programmatic paper comparison."""

import datetime
from collections import Counter

import pytest

from repro.analysis.compare import (
    ComparisonRow,
    compare_to_paper,
    comparison_table,
    fraction_passing,
)
from repro.analysis.pipeline import StudyResults
from repro.scenario.calibration import PAPER


def make_results(scale: float, fidelity: float = 1.0) -> StudyResults:
    """Synthetic results at `fidelity` x the scaled paper values."""
    day = datetime.date(1998, 1, 1)
    return StudyResults(
        daily_series=[(day, 1)],
        episodes={},
        yearly_medians={
            year: median * scale * fidelity
            for year, median in PAPER.yearly_medians.items()
        },
        yearly_increase_rates={},
        peak_days=[(day, 1)],
        duration_histogram=Counter(),
        duration_expectations={
            threshold: value * fidelity
            for threshold, value in PAPER.duration_expectations.items()
        },
        one_time_conflicts=round(PAPER.one_day_conflicts * scale * fidelity),
        long_lived_conflicts=round(
            PAPER.conflicts_over_300_days * scale * fidelity
        ),
        ongoing_conflicts=round(PAPER.ongoing_at_end * scale * fidelity),
        max_duration=round(PAPER.max_duration_days * fidelity),
        length_distribution={},
        classification_series=[],
        case_studies=[],
        exchange_point_conflicts=0,
        as_set_excluded_max=0,
        total_days=1279,
    )


class _FakeEpisodes(dict):
    def __len__(self):
        return round(PAPER.total_conflicts * 0.05)


class TestComparison:
    def test_perfect_run_passes_everything(self):
        results = make_results(scale=0.05)
        # total_conflicts is len(episodes); patch via a fake mapping.
        results.episodes = _FakeEpisodes()
        rows = compare_to_paper(results, scale=0.05)
        assert fraction_passing(rows) == 1.0

    def test_terrible_run_fails(self):
        results = make_results(scale=0.05, fidelity=0.1)
        results.episodes = {}
        rows = compare_to_paper(results, scale=0.05)
        assert fraction_passing(rows) < 0.3

    def test_scale_free_rows_not_scaled(self):
        results = make_results(scale=0.05)
        rows = compare_to_paper(results, scale=0.05)
        duration_rows = [
            row for row in rows if row.name.startswith("E[duration")
        ]
        for row in duration_rows:
            assert row.expected == row.paper_value

    def test_absolute_rows_scaled(self):
        results = make_results(scale=0.05)
        rows = compare_to_paper(results, scale=0.05)
        total = next(row for row in rows if row.name == "total conflicts")
        assert total.expected == pytest.approx(
            PAPER.total_conflicts * 0.05
        )

    def test_ratio_and_ok(self):
        row = ComparisonRow(
            name="x", paper_value=100, expected=100, measured=140,
            tolerance=0.5,
        )
        assert row.ratio == pytest.approx(1.4)
        assert row.ok
        tight = ComparisonRow(
            name="x", paper_value=100, expected=100, measured=140,
            tolerance=0.2,
        )
        assert not tight.ok

    def test_zero_expected_handled(self):
        row = ComparisonRow(
            name="x", paper_value=0, expected=0, measured=0, tolerance=0.5
        )
        assert row.ratio == 1.0

    def test_table_renders(self):
        results = make_results(scale=0.05)
        rows = compare_to_paper(results, scale=0.05)
        table = comparison_table(rows)
        assert "Paper vs measured" in table
        assert "total conflicts" in table
        assert "Ratio" in table
