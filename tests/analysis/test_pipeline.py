"""Integration tests: archive -> pipeline -> paper statistics."""

import datetime

import pytest

from repro.analysis.pipeline import StudyPipeline
from repro.analysis.sources import (
    detections_from_archive,
    detections_from_mrt_files,
)
from repro.core.detector import detect_day, detect_snapshot
from repro.mrt.reader import read_rib_snapshot
from repro.scenario.archive import ArchiveReader
from repro.scenario.calibration import PAPER
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

CALENDAR = StudyCalendar(
    datetime.date(1998, 3, 20), datetime.date(1998, 4, 30)
)  # 42 days spanning the 1998 fault
MRT_DAY = datetime.date(1998, 4, 7)


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    directory = tmp_path_factory.mktemp("study")
    config = ScenarioConfig(
        scale=0.02, calendar=CALENDAR, paper_archive_gaps=False
    )
    summary = simulate_study(
        directory, config, mrt_export_days={MRT_DAY}
    )
    window = (datetime.date(1998, 3, 20), datetime.date(1998, 4, 30))
    pipeline = StudyPipeline(classification_window=window)
    results = pipeline.run(detections_from_archive(directory))
    return directory, summary, results


class TestPipelineResults:
    def test_every_day_analyzed(self, study):
        _directory, summary, results = study
        assert results.total_days == summary["observed_days"]
        assert len(results.daily_series) == results.total_days

    def test_conflicts_found(self, study):
        _directory, _summary, results = study
        assert results.total_conflicts > 0
        assert all(count >= 0 for _day, count in results.daily_series)

    def test_spike_day_is_peak(self, study):
        _directory, _summary, results = study
        assert results.peak_days[0][0] == PAPER.spike_1998_date

    def test_spike_case_study_identifies_culprit(self, study):
        _directory, _summary, results = study
        spike_cases = [
            case
            for case in results.case_studies
            if case.report.day == PAPER.spike_1998_date
        ]
        assert len(spike_cases) == 1
        case = spike_cases[0]
        assert case.report.culprit_asn == PAPER.spike_1998_faulty_asn
        assert case.report.involvement > 0.8

    def test_one_time_conflicts_dominated_by_spike(self, study):
        _directory, _summary, results = study
        # The one-day fault conflicts should dominate one-timers, as in
        # the paper (11 358 of 13 730).
        assert results.one_time_conflicts > 0.3 * results.total_conflicts

    def test_duration_histogram_sums_to_total(self, study):
        _directory, _summary, results = study
        assert (
            sum(results.duration_histogram.values())
            == results.total_conflicts
        )

    def test_duration_expectations_monotone(self, study):
        _directory, _summary, results = study
        values = [
            results.duration_expectations[k]
            for k in sorted(results.duration_expectations)
        ]
        assert values == sorted(values)

    def test_length_distribution_dominated_by_24(self, study):
        _directory, _summary, results = study
        for _year, by_length in results.length_distribution.items():
            if sum(by_length.values()) < 5:
                continue
            assert max(by_length, key=by_length.get) == 24

    def test_classification_series_covers_window(self, study):
        _directory, _summary, results = study
        assert len(results.classification_series) == results.total_days
        for _day, counts in results.classification_series:
            assert all(value >= 0 for value in counts.values())

    def test_exchange_point_conflicts_present(self, study):
        _directory, _summary, results = study
        assert results.exchange_point_conflicts >= 1

    def test_as_set_exclusions_counted(self, study):
        _directory, _summary, results = study
        assert results.as_set_excluded_max >= 2

    def test_episode_days_bounded_by_study(self, study):
        _directory, _summary, results = study
        for episode in results.episodes.values():
            assert 1 <= episode.days_observed <= results.total_days


class TestMrtEquivalence:
    def test_mrt_export_exists(self, study):
        directory, _summary, _results = study
        assert (directory / "mrt" / f"rib.{MRT_DAY}.mrt").exists()

    def test_mrt_and_cds_detections_agree(self, study):
        """The full MRT table and the CDS record yield identical MOAS."""
        directory, _summary, _results = study
        mrt_path = directory / "mrt" / f"rib.{MRT_DAY}.mrt"
        from_mrt = detect_snapshot(read_rib_snapshot(mrt_path))

        reader = ArchiveReader(directory)
        record = next(
            record
            for record in reader.iter_days()
            if record.day == MRT_DAY
        )
        from_cds = detect_day(record, reader)

        mrt_conflicts = {
            conflict.prefix: conflict.origins
            for conflict in from_mrt.conflicts
        }
        cds_conflicts = {
            conflict.prefix: conflict.origins
            for conflict in from_cds.conflicts
        }
        assert mrt_conflicts == cds_conflicts
        assert from_mrt.as_set_excluded == from_cds.as_set_excluded

    def test_detections_from_mrt_files_source(self, study):
        directory, _summary, _results = study
        mrt_path = directory / "mrt" / f"rib.{MRT_DAY}.mrt"
        detections = list(detections_from_mrt_files([mrt_path]))
        assert len(detections) == 1
        assert detections[0].day == MRT_DAY
        assert detections[0].num_conflicts > 0
