"""Property harness for the episode query index.

The index's contract (ISSUE 10): every answer it gives must be
*identical* to what a full-study fold would say — episode view, RPKI
rollup, verdict slice — and the encoded file must not care how the
fold was run.  This module pins that with hypothesis over arbitrary
detection streams and arbitrary shard partitions (reusing the merge
algebra's strategies), plus a fixed-seed integration sweep across
archive formats (v1/v2) and workers×shards layouts.

Example counts come from the hypothesis profile (``dev`` for tier-1,
``ci`` for the dedicated slow leg).
"""

from __future__ import annotations

import datetime
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.analysis.export import episode_record
from repro.analysis.index import EpisodeIndex, IndexRecord
from repro.analysis.pipeline import StudyState
from repro.api.service import MoasService
from repro.core.verdict import VerdictEngine
from repro.netbase.prefix import Prefix
from repro.netbase.sharding import ShardSpec
from tests.analysis.test_merge_properties import (
    START,
    detection_streams,
    feed_engine,
    feed_state,
    partitions,
    prefixes,
    roa_tables,
)


def build_index(detections, roa_table=None, with_verdicts=False):
    """Serial fold -> (results, verdicts or None, EpisodeIndex)."""
    results = feed_state(detections, roa_table=roa_table).results()
    verdicts = None
    if with_verdicts:
        verdicts = feed_engine(
            detections, roa_table=roa_table
        ).finalize()
    return results, verdicts, EpisodeIndex.build(
        results, verdicts=verdicts
    )


class TestIndexEqualsFold:
    """Satellite 1: every answer == the full-study fold's view."""

    @given(detection_streams())
    def test_every_lookup_matches_episode_record(self, detections):
        results, _, index = build_index(detections)
        assert len(index) == len(results.episodes)
        assert index.days_indexed == results.total_days
        for prefix in results.episodes:
            record = index.lookup(prefix)
            assert record.episode_dict() == episode_record(
                results, prefix
            )

    @given(detection_streams(), roa_tables())
    def test_rpki_rollup_matches_fold(self, detections, table):
        results, _, index = build_index(detections, roa_table=table)
        for prefix in results.episodes:
            record = index.lookup(prefix)
            assert record.episode_dict() == episode_record(
                results, prefix
            )
            assert record.rpki_state == (
                results.rpki_episode_states.get(prefix)
            )

    @given(detection_streams(), roa_tables())
    def test_verdict_slice_matches_engine(self, detections, table):
        results, verdicts, index = build_index(
            detections, roa_table=table, with_verdicts=True
        )
        for prefix in results.episodes:
            verdict = verdicts.get(prefix)
            answer = index.lookup(prefix).verdict_dict()
            if verdict is None:
                assert answer is None
                continue
            assert answer == {
                "kind": verdict.kind,
                "tags": sorted(verdict.tags),
                "suspicion": verdict.suspicion,
                "perpetrators": sorted(verdict.perpetrators),
            }
            # Exact float equality is the point: the suspicion score
            # is carried as a raw IEEE double, never re-derived.
            assert answer["suspicion"] == verdict.suspicion

    @given(detection_streams(), prefixes)
    def test_absent_prefix_answers_none(self, detections, probe):
        results, _, index = build_index(detections)
        if probe in results.episodes:
            assert index.lookup(probe) is not None
        else:
            assert index.lookup(probe) is None
            assert index.query(probe) is None


class TestWindowQueries:
    """Point/range answers vs a brute-force interval scan."""

    @given(
        detection_streams(),
        st.integers(-5, 30),
        st.integers(0, 30),
    )
    def test_active_count_matches_brute_force(
        self, detections, start_offset, span
    ):
        results, _, index = build_index(detections)
        start = START + datetime.timedelta(days=start_offset)
        end = start + datetime.timedelta(days=span)
        brute = sum(
            1
            for episode in results.episodes.values()
            if not (
                episode.first_day > end or episode.last_day < start
            )
        )
        assert index.active_count(start, end) == brute
        # Swapped bounds normalize to the same window.
        assert index.active_count(end, start) == brute

    @given(
        detection_streams(),
        st.integers(-5, 30),
        st.integers(0, 30),
    )
    def test_overlap_days_match_interval_arithmetic(
        self, detections, start_offset, span
    ):
        results, _, index = build_index(detections)
        start = START + datetime.timedelta(days=start_offset)
        end = start + datetime.timedelta(days=span)
        for prefix, episode in results.episodes.items():
            answer = index.query(prefix, window=(start, end))
            expected = (
                min(episode.last_day, end)
                - max(episode.first_day, start)
            ).days + 1
            assert answer.overlap_days == max(0, expected)
            assert answer.active == (expected > 0)
            assert answer.concurrent_episodes == index.active_count(
                start, end
            )
            assert answer.total_episodes == len(index)

    @given(detection_streams())
    def test_default_window_is_episode_span(self, detections):
        results, _, index = build_index(detections)
        for prefix, episode in results.episodes.items():
            answer = index.query(prefix)
            assert not answer.explicit_window
            assert answer.window_start == episode.first_day
            assert answer.window_end == episode.last_day
            assert answer.active
            assert answer.overlap_days == (
                episode.last_day - episode.first_day
            ).days + 1


class TestLayoutByteEquivalence:
    """Satellite 1 (layouts): the encoded file is fold-invariant."""

    @given(
        detection_streams(),
        partitions,
        st.randoms(use_true_random=False),
    )
    def test_any_partition_encodes_identical_bytes(
        self, detections, partition, rng
    ):
        count, scheme = partition
        serial = EpisodeIndex.build(
            feed_state(detections).results()
        ).to_bytes()
        shards = list(ShardSpec.partition(count, scheme))
        rng.shuffle(shards)  # merge order must not matter
        merged = StudyState.merged(
            [feed_state(detections, shard=shard) for shard in shards]
        ).results()
        assert EpisodeIndex.build(merged).to_bytes() == serial

    @given(detection_streams(), roa_tables(), partitions)
    def test_verdict_enriched_bytes_are_fold_invariant(
        self, detections, table, partition
    ):
        count, scheme = partition
        serial = EpisodeIndex.build(
            feed_state(detections, roa_table=table).results(),
            verdicts=feed_engine(
                detections, roa_table=table
            ).finalize(),
        ).to_bytes()
        shards = list(ShardSpec.partition(count, scheme))
        merged_state = StudyState.merged(
            [
                feed_state(detections, shard=shard, roa_table=table)
                for shard in shards
            ]
        )
        merged_engine = VerdictEngine.merged(
            [
                feed_engine(detections, shard=shard, roa_table=table)
                for shard in shards
            ]
        )
        sharded = EpisodeIndex.build(
            merged_state.results(),
            verdicts=merged_engine.finalize(),
        ).to_bytes()
        assert sharded == serial


class TestRoundtrip:
    """save -> load reproduces the exact in-memory index."""

    @given(detection_streams(), roa_tables())
    def test_save_load_is_byte_stable(self, detections, table):
        _, _, index = build_index(
            detections, roa_table=table, with_verdicts=True
        )
        encoded = index.to_bytes()
        with tempfile.TemporaryDirectory() as scratch:
            path = Path(scratch) / "episodes.idx"
            index.save(path)
            assert path.read_bytes() == encoded
            loaded = EpisodeIndex.load(path)
        assert loaded.to_bytes() == encoded
        assert loaded.days_indexed == index.days_indexed
        assert loaded.last_day == index.last_day
        for prefix in index.prefixes():
            assert (
                loaded.query(prefix).to_dict()
                == index.query(prefix).to_dict()
            )

    @given(detection_streams())
    def test_loaded_structural_queries_survive(self, detections):
        results, _, index = build_index(detections)
        with tempfile.TemporaryDirectory() as scratch:
            path = Path(scratch) / "episodes.idx"
            index.save(path)
            loaded = EpisodeIndex.load(path)
        for prefix in results.episodes:
            assert [
                record.prefix for record in loaded.covering(prefix)
            ] == [record.prefix for record in index.covering(prefix)]
            assert [
                record.prefix for record in loaded.covered(prefix)
            ] == [record.prefix for record in index.covered(prefix)]


class TestFromRecordsContract:
    def test_out_of_order_records_are_rejected(self):
        day = datetime.date(1998, 1, 1)

        def record(text):
            return IndexRecord(
                prefix=Prefix.parse(text),
                first_day=day,
                last_day=day,
                days_observed=1,
                origins=(1, 2),
                max_origins_single_day=2,
                ongoing=False,
            )

        with pytest.raises(ValueError, match="sorted"):
            EpisodeIndex.from_records(
                [record("10.1.0.0/16"), record("10.0.0.0/16")]
            )
        with pytest.raises(ValueError, match="sorted"):
            EpisodeIndex.from_records(
                [record("10.0.0.0/16"), record("10.0.0.0/16")]
            )


# -- archive formats × layouts (fixed seed) -------------------------------

LAYOUTS = ((1, 1), (1, 3), (2, 2))


@pytest.fixture(scope="module")
def index_archives(tmp_path_factory):
    """One 40-day world as both a v1 and a v2 archive (with ROAs)."""
    from repro.scenario.archive import convert_archive
    from repro.scenario.rpki import RpkiConfig
    from repro.scenario.world import ScenarioConfig, simulate_study
    from repro.util.dates import StudyCalendar

    base = tmp_path_factory.mktemp("index-archives")
    v1 = base / "v1"
    simulate_study(
        v1,
        ScenarioConfig(
            scale=0.02,
            calendar=StudyCalendar(
                datetime.date(1997, 11, 8),
                datetime.date(1997, 12, 17),
            ),
            paper_archive_gaps=False,
            rpki=RpkiConfig(),
        ),
    )
    v2 = base / "v2"
    convert_archive(v1, v2, format="v2")
    return {"v1": v1, "v2": v2}


@pytest.fixture(scope="module")
def reference_bytes(index_archives):
    """The serial v1 fold's encoded index — the answer key."""
    service = MoasService(roa_table=index_archives["v1"])
    service.feed(index_archives["v1"])
    return service.episode_index().to_bytes()


class TestArchiveLayoutEquivalence:
    """Satellite 1 (archives): v1/v2 × workers×shards, same bytes."""

    @pytest.mark.parametrize("format", ("v1", "v2"))
    @pytest.mark.parametrize(
        "workers,shards", LAYOUTS, ids=lambda v: str(v)
    )
    def test_every_layout_encodes_the_reference_index(
        self, index_archives, reference_bytes, format, workers, shards
    ):
        archive = index_archives[format]
        service = MoasService(
            workers=workers, shards=shards, roa_table=archive
        )
        service.feed(archive)
        assert (
            service.episode_index().to_bytes() == reference_bytes
        )

    def test_build_index_writes_the_reference_file(
        self, index_archives, reference_bytes, tmp_path
    ):
        service = MoasService(roa_table=index_archives["v2"])
        service.feed(index_archives["v2"])
        path = service.build_index(tmp_path / "episodes.idx")
        assert path.read_bytes() == reference_bytes
