"""Tests for ground-truth-scored evaluation of the verdict engine."""

import datetime
import json

import pytest

from repro.analysis.evaluation import (
    EvaluationResult,
    evaluate_verdicts,
    evaluation_ascii,
    evaluation_csv,
    evaluation_json,
    organic_truth,
)
from repro.core.verdict import KIND_ORGANIC, Verdict
from repro.netbase.prefix import Prefix
from repro.scenario.incidents import (
    IncidentKind,
    IncidentLabel,
    IncidentScript,
)
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1998, 2, 15)
)  # 100 days


def verdict(prefix: str, kind: str) -> Verdict:
    return Verdict(
        prefix=Prefix.parse(prefix),
        kind=kind,
        tags=frozenset(),
        suspicion=0.5,
        days_observed=1,
        origins=frozenset({1, 2}),
    )


def label(prefix: str, kind: IncidentKind) -> IncidentLabel:
    return IncidentLabel(
        kind=kind,
        prefix=Prefix.parse(prefix),
        start_index=10,
        end_index=12,
        perpetrator=666,
        origins=(7, 666),
    )


class TestScoring:
    def test_perfect_attribution(self):
        verdicts = {
            Prefix.parse("10.0.0.0/8"): verdict("10.0.0.0/8", "exact_hijack"),
            Prefix.parse("11.0.0.0/8"): verdict("11.0.0.0/8", "anycast"),
        }
        result = evaluate_verdicts(
            verdicts,
            injected=[
                label("10.0.0.0/8", IncidentKind.EXACT_HIJACK),
                label("11.0.0.0/8", IncidentKind.ANYCAST),
            ],
        )
        assert result.micro_f1 == 1.0
        assert result.injected_detected == 2
        assert result.injected_coverage["exact_hijack"] == (1, 1)

    def test_missed_label_is_false_negative(self):
        result = evaluate_verdicts(
            {}, injected=[label("10.0.0.0/8", IncidentKind.EXACT_HIJACK)]
        )
        scores = {score.kind: score for score in result.per_kind}
        assert scores["exact_hijack"].false_negatives == 1
        assert result.confusion["exact_hijack"]["missed"] == 1
        assert result.micro_f1 == 0.0

    def test_unlabeled_incident_prediction_is_false_positive(self):
        verdicts = {
            Prefix.parse("10.0.0.0/8"): verdict("10.0.0.0/8", "exact_hijack")
        }
        result = evaluate_verdicts(verdicts)
        scores = {score.kind: score for score in result.per_kind}
        assert scores["exact_hijack"].false_positives == 1
        assert result.confusion[KIND_ORGANIC]["exact_hijack"] == 1

    def test_wrong_kind_counts_both_ways(self):
        verdicts = {
            Prefix.parse("10.0.0.0/8"): verdict("10.0.0.0/8", "anycast")
        }
        result = evaluate_verdicts(
            verdicts,
            injected=[label("10.0.0.0/8", IncidentKind.EXACT_HIJACK)],
        )
        scores = {score.kind: score for score in result.per_kind}
        assert scores["exact_hijack"].false_negatives == 1
        assert scores["anycast"].false_positives == 1
        assert result.injected_coverage["exact_hijack"] == (0, 1)

    def test_injected_label_overrides_organic_mapping(self):
        verdicts = {
            Prefix.parse("10.0.0.0/8"): verdict("10.0.0.0/8", "exact_hijack")
        }
        organic = [
            {
                "prefix": "10.0.0.0/8",
                "cause": "traffic_engineering",
                "origins": [7, 9],
            }
        ]
        result = evaluate_verdicts(
            verdicts,
            injected=[label("10.0.0.0/8", IncidentKind.EXACT_HIJACK)],
            organic=organic,
        )
        assert result.confusion["exact_hijack"]["exact_hijack"] == 1
        assert KIND_ORGANIC not in result.confusion


class TestOrganicTruth:
    def test_cause_mapping(self):
        truth = organic_truth(
            [
                {"prefix": "10.0.0.0/8", "cause": "exchange_point",
                 "origins": [1, 2]},
                {"prefix": "11.0.0.0/8", "cause": "misconfig",
                 "origins": [1, 2]},
                {"prefix": "12.0.0.0/8", "cause": "fault_mass_origination",
                 "origins": [1, 2]},
                {"prefix": "13.0.0.0/8", "cause": "static_multihoming",
                 "origins": [1, 2]},
            ]
        )
        assert truth[Prefix.parse("10.0.0.0/8")] == "ixp_conflict"
        assert truth[Prefix.parse("11.0.0.0/8")] == "exact_hijack"
        assert truth[Prefix.parse("12.0.0.0/8")] == "exact_hijack"
        assert truth[Prefix.parse("13.0.0.0/8")] == KIND_ORGANIC

    def test_private_as_counts_as_leak_only_when_leaked(self):
        truth = organic_truth(
            [
                {"prefix": "10.0.0.0/8", "cause": "private_as",
                 "origins": [7, 64513]},
                {"prefix": "11.0.0.0/8", "cause": "private_as",
                 "origins": [7, 9]},
            ]
        )
        assert truth[Prefix.parse("10.0.0.0/8")] == "private_leak"
        assert truth[Prefix.parse("11.0.0.0/8")] == KIND_ORGANIC


class TestRenderers:
    @pytest.fixture()
    def result(self) -> EvaluationResult:
        return evaluate_verdicts(
            {
                Prefix.parse("10.0.0.0/8"): verdict(
                    "10.0.0.0/8", "exact_hijack"
                )
            },
            injected=[label("10.0.0.0/8", IncidentKind.EXACT_HIJACK)],
        )

    def test_csv_has_header_and_micro_row(self, result):
        lines = evaluation_csv(result).strip().splitlines()
        assert lines[0].startswith("kind,true_positives")
        assert lines[-1].startswith("micro,")

    def test_ascii_mentions_scores_and_confusion(self, result):
        text = evaluation_ascii(result)
        assert "Incident attribution scorecard" in text
        assert "Confusion" in text
        assert "exact_hijack" in text

    def test_json_round_trips(self, result):
        payload = json.loads(evaluation_json(result))
        assert payload["micro"]["f1"] == 1.0
        assert payload["injected_coverage"]["exact_hijack"] == {
            "detected": 1,
            "injected": 1,
        }

    def test_registry_dispatch(self, result):
        from repro.api.renderers import available_renderings, render

        assert available_renderings()["evaluation"] == (
            "ascii",
            "csv",
            "json",
        )
        assert render(result, "evaluation", "csv") == evaluation_csv(result)


@pytest.fixture(scope="module")
def canned_archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("evaluation") / "archive"
    config = ScenarioConfig(
        scale=0.02,
        calendar=CALENDAR,
        paper_archive_gaps=False,
        incidents=IncidentScript.canned(CALENDAR.num_days),
    )
    simulate_study(directory, config)
    return directory


class TestEndToEnd:
    def test_service_evaluate_detects_every_kind(self, canned_archive):
        from repro.api.service import MoasService

        report = MoasService().evaluate(canned_archive)
        for kind, (detected, injected) in (
            report.result.injected_coverage.items()
        ):
            assert detected >= 1, f"{kind}: {detected}/{injected}"
        assert report.result.micro_f1 > 0.5
        assert len(report.verdicts) == report.result.num_verdicts

    def test_parallel_and_sharded_evaluation_identical(self, canned_archive):
        import os

        from repro.api.service import MoasService

        workers = int(os.environ.get("REPRO_TEST_WORKERS", "2"))
        serial = MoasService().evaluate(canned_archive)
        parallel = MoasService(workers=workers, shards=2).evaluate(
            canned_archive
        )
        assert serial.result.to_dict() == parallel.result.to_dict()
        assert serial.verdicts == parallel.verdicts

    def test_cli_evaluate_matches_across_workers(
        self, canned_archive, tmp_path, capsys
    ):
        from repro.api.cli import main

        assert main(["evaluate", str(canned_archive)]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(
                [
                    "evaluate",
                    str(canned_archive),
                    "--workers",
                    "2",
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        assert "Incident attribution scorecard" in serial_out

    def test_cli_evaluate_json_out(self, canned_archive, tmp_path, capsys):
        from repro.api.cli import main

        artifact = tmp_path / "scores" / "BENCH_evaluation.json"
        assert (
            main(
                [
                    "evaluate",
                    str(canned_archive),
                    "--format",
                    "json",
                    "--json-out",
                    str(artifact),
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert json.loads(artifact.read_text()) == json.loads(stdout)

    def test_cli_evaluate_missing_archive_fails_cleanly(
        self, tmp_path, capsys
    ):
        from repro.api.cli import main

        code = main(["evaluate", str(tmp_path / "nowhere")])
        assert code == 1
        assert "repro evaluate:" in capsys.readouterr().err
