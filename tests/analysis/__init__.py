"""Test package: tests/analysis."""
