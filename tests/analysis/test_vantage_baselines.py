"""Tests for the vantage-point analysis and the Huston baseline."""

import datetime

import pytest

from repro.analysis.baselines import HustonCounter
from repro.analysis.vantage import VantageAnalyzer
from repro.bgp.relationships import ASGraph
from repro.core.detector import DayDetection, DailyConflict
from repro.netbase.prefix import Prefix


def small_internet() -> ASGraph:
    graph = ASGraph()
    graph.add_peering(701, 1239)
    graph.add_customer(701, 100)
    graph.add_customer(1239, 200)
    graph.add_customer(100, 7)
    graph.add_customer(200, 8)
    graph.add_customer(100, 9)
    graph.add_customer(200, 9)
    return graph


class TestVantageAnalyzer:
    def test_adj_rib_in_sees_neighbor_exports(self):
        analyzer = VantageAnalyzer(small_internet())
        # 701 hears origin 7 from customer 100 and origin 8 from peer
        # 1239 (customer route of 1239, exportable to peers).
        origins = analyzer.adj_rib_in_origins(701, [7, 8])
        assert origins == {7, 8}

    def test_stub_vantage_sees_less(self):
        analyzer = VantageAnalyzer(small_internet())
        # Stub 7 has one provider (100): one route, one origin.
        origins = analyzer.adj_rib_in_origins(7, [8, 9])
        assert len(origins) == 1

    def test_multihomed_stub_can_see_conflict(self):
        analyzer = VantageAnalyzer(small_internet())
        # 9 hears from both providers; 7 under 100, 8 under 200.
        assert analyzer.conflict_visible_at(9, [7, 8])

    def test_vantage_as_origin_counts_itself(self):
        analyzer = VantageAnalyzer(small_internet())
        origins = analyzer.adj_rib_in_origins(7, [7, 8])
        assert 7 in origins

    def test_valley_free_export_limits(self):
        # 100's provider route to 8 must not be exported to peer
        # vantage points, only to customers.
        graph = small_internet()
        graph.add_peering(100, 200)
        analyzer = VantageAnalyzer(graph)
        # From 100's perspective: 8 reachable via peer 200 (customer
        # route at 200 -> exported to peer 100: OK).
        assert 8 in analyzer.adj_rib_in_origins(100, [8])

    def test_compare_collector_vs_vantages(self):
        analyzer = VantageAnalyzer(small_internet())
        conflicts = [
            (Prefix.parse("10.0.0.0/8"), [7, 8]),
            (Prefix.parse("192.0.2.0/24"), [7, 9]),
        ]
        comparison = analyzer.compare(
            conflicts, [True, True], vantage_asns=[701, 7]
        )
        assert comparison.collector_conflicts == 2
        # The big ISP sees at least as much as the stub.
        assert (
            comparison.per_as_conflicts[701]
            >= comparison.per_as_conflicts[7]
        )

    def test_compare_length_mismatch_rejected(self):
        analyzer = VantageAnalyzer(small_internet())
        with pytest.raises(ValueError, match="align"):
            analyzer.compare([], [True], vantage_asns=[701])


class TestHustonCounter:
    def _detection(self, day, count):
        conflicts = tuple(
            DailyConflict(
                prefix=Prefix.parse(f"10.{i}.0.0/24"),
                origins=frozenset({1, 2}),
            )
            for i in range(count)
        )
        return DayDetection(
            day=day,
            conflicts=conflicts,
            prefixes_scanned=1000,
            as_set_excluded=0,
        )

    def test_counts_per_day(self):
        counter = HustonCounter()
        day = datetime.date(2001, 2, 18)
        assert counter.observe(self._detection(day, 3)) == 3
        assert counter.latest() == (day, 3)

    def test_run_over_stream(self):
        counter = HustonCounter()
        series = counter.run(
            self._detection(datetime.date(2001, 2, 18 + offset), offset)
            for offset in range(3)
        )
        assert [count for _day, count in series] == [0, 1, 2]

    def test_empty(self):
        assert HustonCounter().latest() is None
