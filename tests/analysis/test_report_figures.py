"""Tests for table and figure rendering."""

import datetime
from collections import Counter

import pytest

from repro.analysis.figures import (
    figure1_ascii,
    figure1_csv,
    figure3_ascii,
    figure3_csv,
    figure5_ascii,
    figure5_csv,
    figure6_ascii,
    figure6_csv,
)
from repro.analysis.pipeline import StudyResults
from repro.analysis.report import figure2_table, figure4_table, summary_report
from repro.core.classifier import ConflictClass
from repro.core.episodes import ConflictEpisode
from repro.netbase.prefix import Prefix


@pytest.fixture()
def results() -> StudyResults:
    day0 = datetime.date(1998, 1, 1)
    day1 = datetime.date(1998, 1, 2)
    prefix = Prefix.parse("10.0.0.0/24")
    episode = ConflictEpisode(
        prefix=prefix,
        first_day=day0,
        last_day=day1,
        days_observed=2,
        origins_ever=frozenset({1, 2}),
        max_origins_single_day=2,
        ongoing=True,
    )
    return StudyResults(
        daily_series=[(day0, 5), (day1, 8)],
        episodes={prefix: episode},
        yearly_medians={1998: 6.5},
        yearly_increase_rates={},
        peak_days=[(day1, 8)],
        duration_histogram=Counter({2: 1}),
        duration_expectations={0: 2.0},
        one_time_conflicts=0,
        long_lived_conflicts=0,
        ongoing_conflicts=1,
        max_duration=2,
        length_distribution={1998: {24: 6.5}},
        classification_series=[
            (
                day0,
                {
                    ConflictClass.ORIG_TRAN_AS: 1,
                    ConflictClass.SPLIT_VIEW: 2,
                    ConflictClass.DISTINCT_PATHS: 2,
                },
            )
        ],
        case_studies=[],
        exchange_point_conflicts=0,
        as_set_excluded_max=2,
        total_days=2,
    )


class TestTables:
    def test_figure2_table(self, results):
        table = figure2_table(results)
        assert "1998" in table and "6.5" in table

    def test_figure4_table(self, results):
        table = figure4_table(results)
        assert "longer than 0 days" in table
        assert "2.0" in table

    def test_summary_mentions_paper_values(self, results):
        text = summary_report(results)
        assert "38225" in text  # paper totals shown for comparison
        assert "total conflicts:          1" in text


class TestFigures:
    def test_figure1_csv(self, results):
        csv_text = figure1_csv(results)
        assert "date,conflicts" in csv_text
        assert "1998-01-01,5" in csv_text

    def test_figure1_ascii(self, results):
        assert "Fig. 1" in figure1_ascii(results, width=30)

    def test_figure3_csv(self, results):
        assert "duration_days,conflicts" in figure3_csv(results)

    def test_figure3_ascii(self, results):
        assert "Fig. 3" in figure3_ascii(results)

    def test_figure5_csv(self, results):
        csv_text = figure5_csv(results)
        assert "1998,24,6.50" in csv_text

    def test_figure5_ascii(self, results):
        text = figure5_ascii(results)
        assert "/24" in text

    def test_figure5_ascii_specific_year(self, results):
        assert "1998" in figure5_ascii(results, year=1998)

    def test_figure6_csv(self, results):
        csv_text = figure6_csv(results)
        assert "OrigTranAS" in csv_text
        assert "1998-01-01,1,2,2" in csv_text

    def test_figure6_ascii(self, results):
        text = figure6_ascii(results, width=30)
        assert "DistinctPaths" in text

    def test_figure6_empty_window(self, results):
        results.classification_series = []
        assert "empty" in figure6_ascii(results)
