"""RPKI analysis acceptance suite.

One canned-incident world with an RPKI shadow, archived as v1 and v2;
RPKI-enabled analysis must be byte-identical across every
workers x shards layout on both formats, exact-prefix hijacks must
validate *invalid*, and anycast episodes under a covering multi-origin
ROA set must stay *valid*.  ``REPRO_TEST_WORKERS`` overrides the pool
size, mirroring the other equality suites.
"""

import datetime
import os

import pytest

from repro.api.renderers import render
from repro.api.service import MoasService
from repro.netbase.rpki import RoaTable
from repro.scenario.incidents import IncidentKind, IncidentScript
from repro.scenario.rpki import RpkiConfig
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1998, 2, 15)
)  # 100 days

#: The acceptance matrix: serial vs WORKERS x shards {1, 4}.
LAYOUTS = [(1, 1), (WORKERS, 1), (WORKERS, 4), (1, 4)]


def _config(archive_format):
    return ScenarioConfig(
        scale=0.02,
        calendar=CALENDAR,
        paper_archive_gaps=False,
        incidents=IncidentScript.canned(CALENDAR.num_days),
        rpki=RpkiConfig(),
        archive_format=archive_format,
    )


@pytest.fixture(scope="module")
def archives(tmp_path_factory):
    base = tmp_path_factory.mktemp("rpki-equivalence")
    simulate_study(base / "v1", _config("v1"))
    simulate_study(base / "v2", _config("v2"))
    return {"v1": base / "v1", "v2": base / "v2"}


def _analyze(archive, workers=1, shards=1):
    service = MoasService(
        workers=workers, shards=shards, roa_table=archive
    )
    service.feed(archive)
    return service.results()


@pytest.fixture(scope="module")
def golden_results(archives):
    return _analyze(archives["v1"])


@pytest.fixture(scope="module")
def golden_report(archives):
    """``evaluate`` auto-loads the archive's roas.json."""
    return MoasService().evaluate(archives["v1"])


class TestLayoutAndFormatEquivalence:
    @pytest.mark.parametrize("workers,shards", LAYOUTS)
    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_results_identical(
        self, archives, golden_results, fmt, workers, shards
    ):
        results = _analyze(archives[fmt], workers=workers, shards=shards)
        assert results == golden_results
        assert results.rpki_episode_states == (
            golden_results.rpki_episode_states
        )

    def test_rendered_rpki_figures_byte_identical(
        self, archives, golden_results
    ):
        results = _analyze(archives["v2"], workers=WORKERS, shards=4)
        for figure in ("rpki", "longevity"):
            for fmt in ("csv", "ascii", "json"):
                assert render(results, figure, fmt) == render(
                    golden_results, figure, fmt
                )

    @pytest.mark.parametrize("workers,shards", [(WORKERS, 4)])
    def test_evaluation_identical(
        self, archives, golden_report, workers, shards
    ):
        for fmt in ("v1", "v2"):
            report = MoasService(workers=workers, shards=shards).evaluate(
                archives[fmt]
            )
            assert report.verdicts == golden_report.verdicts
            assert (
                report.result.to_dict() == golden_report.result.to_dict()
            )


class TestAcceptanceVerdicts:
    def test_exact_hijacks_validate_invalid(self, golden_report):
        hijacks = [
            label
            for label in golden_report.labels
            if label.kind is IncidentKind.EXACT_HIJACK
        ]
        assert hijacks, "canned suite lost its exact hijacks"
        for label in hijacks:
            verdict = golden_report.verdicts[label.prefix]
            assert verdict.rpki_state == "invalid", (
                f"{label.prefix}: expected invalid, got "
                f"{verdict.rpki_state}"
            )

    def test_anycast_under_multi_origin_roas_stays_valid(
        self, archives, golden_report
    ):
        anycasts = [
            label
            for label in golden_report.labels
            if label.kind is IncidentKind.ANYCAST
        ]
        assert anycasts, "canned suite lost its anycast incident"
        table = RoaTable.load(archives["v1"])
        for label in anycasts:
            # The covering multi-origin ROA set really is there...
            covering = table.covering_roas(label.prefix)
            assert set(label.origins) <= {
                roa.origin for roa in covering
            }
            # ...and the episode rolls up valid.
            assert (
                golden_report.verdicts[label.prefix].rpki_state
                == "valid"
            )

    def test_study_results_carry_matching_states(
        self, golden_results, golden_report
    ):
        # StudyState's rollup and VerdictEngine's rollup are computed
        # independently; on conflicted prefixes they must agree.
        for prefix, state in golden_results.rpki_episode_states.items():
            verdict = golden_report.verdicts.get(prefix)
            if verdict is not None and verdict.days_observed > 0:
                assert verdict.rpki_state == state, str(prefix)

    def test_states_cover_every_episode(self, golden_results):
        assert set(golden_results.rpki_episode_states) == set(
            golden_results.episodes
        )
        counts = golden_results.rpki_state_counts
        assert sum(counts.values()) == len(golden_results.episodes)
        assert counts.get("invalid", 0) >= 1
        assert counts.get("valid", 0) >= 1


class TestWithoutRpki:
    def test_results_without_table_render_not_evaluated(self, archives):
        service = MoasService()
        service.feed(archives["v1"])
        results = service.results()
        assert results.rpki_episode_states == {}
        assert results.rpki_state_counts == {}
        assert "not_evaluated" in render(results, "longevity", "csv")
        assert render(results, "rpki", "csv").splitlines()[1].startswith(
            "not_evaluated,"
        )


class TestCheckpointWithRpki:
    def test_sharded_checkpoint_resume_matches_straight_run(
        self, archives, golden_results, tmp_path
    ):
        from repro.api.sources import ArchiveSource

        detections = list(ArchiveSource(archives["v1"]).detections())
        midpoint = len(detections) // 2
        first = MoasService(shards=2, roa_table=archives["v1"])
        first.feed(detections[:midpoint])
        checkpoint = tmp_path / "rpki.ckpt"
        first.save_checkpoint(checkpoint)

        resumed = MoasService.load_checkpoint(checkpoint)
        assert resumed.roa_table == first.roa_table
        resumed.feed(detections[midpoint:])
        assert resumed.results() == golden_results

    def test_merge_rejects_different_tables(self, archives):
        from repro.analysis.pipeline import StudyPipeline

        pipeline = StudyPipeline()
        shards = __import__(
            "repro.netbase.sharding", fromlist=["ShardSpec"]
        ).ShardSpec.partition(2)
        with_table = pipeline.start(
            shard=shards[0], roa_table=RoaTable.load(archives["v1"])
        )
        without = pipeline.start(shard=shards[1])
        with pytest.raises(ValueError, match="ROA table"):
            with_table.merge(without)


class TestAnalyzeCli:
    def test_analyze_rpki_writes_figures(self, archives, tmp_path, capsys):
        from repro.api.cli import main

        out = tmp_path / "out"
        assert (
            main(
                [
                    "analyze",
                    str(archives["v1"]),
                    str(out),
                    "--rpki",
                    str(archives["v1"]),
                ]
            )
            == 0
        )
        report = capsys.readouterr().out
        assert "RPKI origin validation of MOAS episodes" in report
        assert "MOAS episode longevity by RPKI validation state" in report
        assert (out / "rpki.csv").is_file()
        assert (out / "longevity.csv").is_file()

    def test_analyze_without_rpki_output_unchanged(
        self, archives, tmp_path, capsys
    ):
        from repro.api.cli import main

        out = tmp_path / "plain"
        assert main(["analyze", str(archives["v1"]), str(out)]) == 0
        report = capsys.readouterr().out
        assert "RPKI origin validation" not in report
        assert not (out / "rpki.csv").exists()

    def test_analyze_rpki_matches_across_layouts(
        self, archives, tmp_path, capsys
    ):
        from repro.api.cli import main

        outputs = []
        for index, (workers, shards) in enumerate([(1, 1), (WORKERS, 4)]):
            out = tmp_path / f"out-{index}"
            assert (
                main(
                    [
                        "analyze",
                        str(archives["v2"]),
                        str(out),
                        "--rpki",
                        str(archives["v2"]),
                        "--workers",
                        str(workers),
                        "--shards",
                        str(shards),
                    ]
                )
                == 0
            )
            capsys.readouterr()
            outputs.append(
                (
                    (out / "rpki.csv").read_bytes(),
                    (out / "longevity.csv").read_bytes(),
                    (out / "report.txt").read_bytes(),
                )
            )
        assert outputs[0] == outputs[1]

    def test_resume_cannot_turn_rpki_on(self, archives, tmp_path, capsys):
        from repro.api.cli import main

        checkpoint = tmp_path / "plain.ckpt"
        out = tmp_path / "out"
        assert (
            main(
                [
                    "analyze",
                    str(archives["v1"]),
                    str(out),
                    "--checkpoint",
                    str(checkpoint),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "analyze",
                str(archives["v1"]),
                str(tmp_path / "out2"),
                "--resume",
                str(checkpoint),
                "--rpki",
                str(archives["v1"]),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot be turned on mid-study" in captured.err

    def test_resume_cannot_switch_roa_databases(
        self, archives, tmp_path, capsys
    ):
        from repro.api.cli import main
        from repro.netbase.rpki import Roa, RoaTable
        from repro.netbase.prefix import Prefix

        checkpoint = tmp_path / "rpki.ckpt"
        assert (
            main(
                [
                    "analyze",
                    str(archives["v1"]),
                    str(tmp_path / "out"),
                    "--rpki",
                    str(archives["v1"]),
                    "--checkpoint",
                    str(checkpoint),
                ]
            )
            == 0
        )
        capsys.readouterr()
        other = tmp_path / "other-roas.json"
        other.write_text(
            RoaTable([Roa(Prefix.parse("10.0.0.0/8"), 8, 7)]).to_json()
        )
        code = main(
            [
                "analyze",
                str(archives["v1"]),
                str(tmp_path / "out2"),
                "--resume",
                str(checkpoint),
                "--rpki",
                str(other),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot switch databases" in captured.err
        # The matching table resumes fine.
        assert (
            main(
                [
                    "analyze",
                    str(archives["v1"]),
                    str(tmp_path / "out3"),
                    "--resume",
                    str(checkpoint),
                    "--rpki",
                    str(archives["v1"]),
                ]
            )
            == 0
        )
        capsys.readouterr()
