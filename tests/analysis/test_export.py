"""Tests for result export formats."""

import csv
import datetime
import io
import json
from collections import Counter

import pytest

from repro.analysis.export import episodes_csv, summary_json
from repro.analysis.pipeline import CaseStudy, StudyResults
from repro.core.causes import SpikeReport
from repro.core.episodes import ConflictEpisode
from repro.netbase.prefix import Prefix


@pytest.fixture()
def results():
    day0 = datetime.date(1998, 1, 1)
    prefixes = [Prefix.parse("10.0.0.0/24"), Prefix.parse("9.0.0.0/8")]
    episodes = {
        prefix: ConflictEpisode(
            prefix=prefix,
            first_day=day0,
            last_day=day0 + datetime.timedelta(days=index),
            days_observed=index + 1,
            origins_ever=frozenset({42, 43 + index}),
            max_origins_single_day=2,
            ongoing=bool(index),
        )
        for index, prefix in enumerate(prefixes)
    }
    case = CaseStudy(
        report=SpikeReport(
            day=day0,
            total_conflicts=100,
            baseline_median=10.0,
            culprit_asn=8584,
            culprit_involved=95,
        ),
        upstream_asn=3561,
        sequence_involved=90,
        sequence_total=100,
    )
    return StudyResults(
        daily_series=[(day0, 2)],
        episodes=episodes,
        yearly_medians={1998: 2.0},
        yearly_increase_rates={},
        peak_days=[(day0, 2)],
        duration_histogram=Counter({1: 1, 2: 1}),
        duration_expectations={0: 1.5},
        one_time_conflicts=1,
        long_lived_conflicts=0,
        ongoing_conflicts=1,
        max_duration=2,
        length_distribution={1998: {24: 1.0, 8: 1.0}},
        classification_series=[],
        case_studies=[case],
        exchange_point_conflicts=0,
        as_set_excluded_max=0,
        total_days=1,
    )


class TestEpisodesCsv:
    def test_rows_sorted_by_prefix(self, results):
        rows = list(csv.DictReader(io.StringIO(episodes_csv(results))))
        assert [row["prefix"] for row in rows] == [
            "9.0.0.0/8",
            "10.0.0.0/24",
        ]

    def test_fields_roundtrip(self, results):
        rows = list(csv.DictReader(io.StringIO(episodes_csv(results))))
        row = rows[1]  # 10.0.0.0/24
        assert row["prefix_length"] == "24"
        assert row["days_observed"] == "1"
        assert row["origins"] == "42 43"
        assert row["ongoing"] == "0"

    def test_ongoing_flag(self, results):
        rows = list(csv.DictReader(io.StringIO(episodes_csv(results))))
        assert rows[0]["ongoing"] == "1"


class TestSummaryJson:
    def test_parses_and_has_keys(self, results):
        payload = json.loads(summary_json(results))
        assert payload["total_conflicts"] == 2
        assert payload["yearly_medians"]["1998"] == 2.0
        assert payload["duration_expectations"]["0"] == 1.5

    def test_case_study_serialized(self, results):
        payload = json.loads(summary_json(results))
        case = payload["case_studies"][0]
        assert case["culprit_asn"] == 8584
        assert case["upstream_asn"] == 3561
        assert case["date"] == "1998-01-01"
