"""The parallel engine's core invariant: parallel == serial, exactly.

Covers the acceptance criteria of the sharded engine: identical
``StudyResults`` (episodes, case studies, classification series and
all) for ``workers=1`` / ``workers=4`` / ``shards=8`` merged, sharded
checkpoints that resume to the same results as an uninterrupted run,
and the supporting machinery (task partitioning, ordered parallel
detection, state merging).

``REPRO_TEST_WORKERS`` overrides the worker count used by the equality
tests, so CI can re-run this file at different pool sizes.
"""

import datetime
import os

import pytest

from repro.analysis.parallel import (
    ParallelExecutor,
    iter_detections,
    partition_tasks,
    resolve_workers,
)
from repro.analysis.pipeline import StudyPipeline, StudyState
from repro.api.sources import ArchiveSource, MemorySource
from repro.netbase.sharding import ShardSpec
from repro.scenario.archive import ArchiveReader
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "4"))

CALENDAR = StudyCalendar(
    datetime.date(1998, 3, 20), datetime.date(1998, 4, 30)
)  # spans the 1998 fault spike, so case studies are exercised
WINDOW = (datetime.date(1998, 3, 20), datetime.date(1998, 4, 30))


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("parallel") / "archive"
    simulate_study(
        directory,
        ScenarioConfig(scale=0.02, calendar=CALENDAR, paper_archive_gaps=False),
    )
    return directory


@pytest.fixture(scope="module")
def pipeline():
    return StudyPipeline(classification_window=WINDOW)


@pytest.fixture(scope="module")
def serial_results(pipeline, archive):
    return pipeline.run(ArchiveSource(archive))


class TestEqualityProperty:
    """For the same source, every workers/shards layout agrees exactly."""

    def test_workers_match_serial(self, pipeline, archive, serial_results):
        parallel = pipeline.run(ArchiveSource(archive), workers=WORKERS)
        assert parallel == serial_results

    def test_eight_shards_merged_match_serial(
        self, pipeline, archive, serial_results
    ):
        sharded = pipeline.run(ArchiveSource(archive), shards=8)
        assert sharded == serial_results

    def test_workers_and_shards_match_serial(
        self, pipeline, archive, serial_results
    ):
        combined = pipeline.run(
            ArchiveSource(archive), workers=WORKERS, shards=3
        )
        assert combined == serial_results

    def test_range_scheme_matches_serial(
        self, pipeline, archive, serial_results
    ):
        executor = ParallelExecutor(workers=1, shards=4, scheme="range")
        states = executor.run(pipeline, ArchiveSource(archive))
        assert StudyState.merged(states).results() == serial_results

    def test_sensitive_fields_identical(
        self, pipeline, archive, serial_results
    ):
        """Spell out the fields the acceptance criteria call out."""
        sharded = pipeline.run(
            ArchiveSource(archive), workers=WORKERS, shards=8
        )
        assert sharded.episodes == serial_results.episodes
        assert sharded.case_studies == serial_results.case_studies
        assert (
            sharded.classification_series
            == serial_results.classification_series
        )
        assert sharded.daily_series == serial_results.daily_series
        assert sharded.as_set_excluded_max == (
            serial_results.as_set_excluded_max
        )


class TestOrderedParallelDetection:
    def test_parallel_stream_equals_serial_stream(self, archive):
        source = ArchiveSource(archive)
        serial = list(source.detections())
        parallel = list(iter_detections(source, workers=WORKERS))
        assert parallel == serial

    def test_plain_directory_is_partitionable(self, archive):
        serial = list(ArchiveSource(archive).detections())
        parallel = list(iter_detections(str(archive), workers=2))
        assert parallel == serial

    def test_iter_days_range_matches_slices(self, archive):
        reader = ArchiveReader(archive)
        full = list(reader.iter_days())
        assert list(reader.iter_days(3, 7)) == full[3:7]
        assert list(reader.iter_days(0, 1)) == full[:1]
        assert list(reader.iter_days(len(full))) == []
        assert list(reader.iter_days(5)) == full[5:]


class TestPartitioning:
    def test_archive_tasks_cover_all_days_once(self, archive):
        tasks = partition_tasks(ArchiveSource(archive), workers=3)
        manifest_days = ArchiveSource(archive).manifest["num_days"]
        spans = [args[1:] for _fn, args in tasks]
        assert spans[0][0] == 0
        assert spans[-1][1] == manifest_days
        for (_, previous_stop), (next_start, _) in zip(spans, spans[1:]):
            assert next_start == previous_stop

    def test_memory_source_not_partitionable(self):
        assert partition_tasks(MemorySource([]), workers=4) is None

    def test_v2_archive_partitions_into_byte_ranges(
        self, archive, tmp_path
    ):
        from repro.scenario.archive import convert_archive, read_day_index

        converted = tmp_path / "v2"
        convert_archive(archive, converted, format="v2")
        tasks = partition_tasks(converted, workers=2)
        offsets, frames_end = read_day_index(converted)
        bounds = offsets + [frames_end]
        spans = [args[1:] for _fn, args in tasks]
        assert spans[0][0] == bounds[0]
        assert spans[-1][1] == frames_end
        for (_, previous_stop), (next_start, _) in zip(spans, spans[1:]):
            assert next_start == previous_stop

    def test_v2_manifest_day_count_lie_raises_cleanly(self, tmp_path):
        import json as jsonlib

        from repro.scenario.archive import ArchiveError, ArchiveWriter

        directory = tmp_path / "lying"
        writer = ArchiveWriter(directory, format="v2")
        writer.finalize({"calendar_start": "1997-11-08"})
        manifest_path = directory / "manifest.json"
        manifest = jsonlib.loads(manifest_path.read_text())
        manifest["num_days"] = 3
        manifest_path.write_text(jsonlib.dumps(manifest))
        with pytest.raises(ArchiveError, match="manifest says"):
            partition_tasks(str(directory), workers=2)

    def test_mrt_source_partitioned_by_file(self, tmp_path):
        from repro.api.sources import MrtFilesSource

        paths = [tmp_path / f"{index}.mrt" for index in range(10)]
        source = MrtFilesSource(paths)
        tasks = partition_tasks(source, workers=2, chunks_per_worker=2)
        chunked = [path for _fn, (chunk, _days) in tasks for path in chunk]
        assert chunked == [str(path) for path in paths]


class TestResolveWorkers:
    def test_auto_detects(self):
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) == resolve_workers(0)

    def test_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            resolve_workers(-2)


class TestStateMerging:
    def test_merge_validates_shard_presence(self, pipeline):
        full = pipeline.start()
        other = pipeline.start()
        with pytest.raises(ValueError, match="unsharded"):
            full.merge(other)

    def test_merge_validates_day_streams(self, pipeline, archive):
        detections = list(ArchiveSource(archive).detections())
        first, second = ShardSpec.partition(2)
        state_a = pipeline.start(shard=first)
        state_b = pipeline.start(shard=second)
        state_a.feed_day(detections[0])
        with pytest.raises(ValueError, match="different day streams"):
            state_a.merge(state_b)

    def test_merge_is_associative(self, pipeline, archive, serial_results):
        detections = list(ArchiveSource(archive).detections())
        states = [
            pipeline.start(shard=spec) for spec in ShardSpec.partition(4)
        ]
        for detection in detections:
            for state in states:
                state.feed_day(detection)
        left = states[0].merge(states[1]).merge(states[2]).merge(states[3])
        right = states[0].merge(states[1].merge(states[2].merge(states[3])))
        assert left.results() == right.results() == serial_results

    def test_merged_state_round_trips_through_json(
        self, pipeline, archive, serial_results
    ):
        import json

        states = [
            pipeline.start(shard=spec) for spec in ShardSpec.partition(2)
        ]
        for detection in ArchiveSource(archive).detections():
            for state in states:
                state.feed_day(detection)
        payload = json.loads(json.dumps(states[0].state_dict()))
        restored = StudyState.from_state(payload, pipeline=pipeline)
        assert restored.shard == states[0].shard
        assert restored.merge(states[1]).results() == serial_results


class TestExecutorResume:
    def test_skip_through_continues_a_partial_run(
        self, pipeline, archive, serial_results
    ):
        detections = list(ArchiveSource(archive).detections())
        midpoint = len(detections) // 2
        executor = ParallelExecutor(workers=1, shards=2)
        states = executor.make_states(pipeline)
        for detection in detections[:midpoint]:
            for state in states:
                state.feed_day(detection)
        executor.run(
            pipeline,
            ArchiveSource(archive),
            states=states,
            skip_through=detections[midpoint - 1].day,
        )
        assert StudyState.merged(states).results() == serial_results


class TestRunValidation:
    def test_invalid_shards_rejected_on_serial_path(self, pipeline):
        with pytest.raises(ValueError, match="shards"):
            pipeline.run([], shards=0)
