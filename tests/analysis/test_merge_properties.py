"""Differential/property harness for the merge algebra.

The PR 4 golden suite pins a handful of fixed workers x shards layouts
over generated worlds; this module generalizes the invariant with
hypothesis: for *arbitrary* detection streams, *any* shard partition of
the prefix space — any shard count, either scheme, merged in any order
— must reproduce the serial result exactly, for both
:class:`~repro.analysis.pipeline.StudyState` and
:class:`~repro.core.verdict.VerdictEngine`, and ``merge`` itself must
be associative.

Example counts come from the hypothesis profile (``dev`` for tier-1,
``ci`` for the dedicated slow leg); the deepest sweeps are additionally
marked ``slow``.
"""

import datetime
import importlib
import json

import pytest
from hypothesis import given, strategies as st

from repro.analysis.pipeline import StudyPipeline, StudyState
from repro.core.detector import DailyConflict, DayDetection
from repro.core.verdict import VerdictEngine
from repro.netbase.prefix import Prefix
from repro.netbase.rpki import Roa, RoaTable
from repro.netbase.sharding import ShardSpec

#: Every shard-combinable state class in the project.  `repro check`'s
#: merge-algebra rule reads this tuple statically: a class that defines
#: ``merge`` anywhere under ``src/`` must be listed here, which forces
#: it through the differential tests below (and through the checkpoint
#: schema snapshot in ``tests/fixtures/checkpoint_schema.json``).
MERGE_ALGEBRA_REGISTRY = (
    "repro.analysis.pipeline.StudyState",
    "repro.core.episodes.EpisodeTracker",
    "repro.core.verdict.VerdictEngine",
)

START = datetime.date(1998, 1, 1)

prefixes = st.builds(
    lambda network, length: Prefix(network, length, strict=False),
    st.integers(0, 2**32 - 1),
    st.integers(8, 28),
)

origin_sets = st.frozensets(st.integers(1, 70000), min_size=2, max_size=5)


@st.composite
def detection_streams(draw):
    """A chronological stream of synthetic daily detections."""
    num_days = draw(st.integers(1, 12))
    detections = []
    for index in range(num_days):
        by_prefix = draw(
            st.dictionaries(prefixes, origin_sets, max_size=8)
        )
        conflicts = tuple(
            DailyConflict(prefix=prefix, origins=origins)
            for prefix, origins in sorted(
                by_prefix.items(), key=lambda item: item[0].sort_key()
            )
        )
        detections.append(
            DayDetection(
                day=START + datetime.timedelta(days=index),
                conflicts=conflicts,
                prefixes_scanned=len(conflicts) + 3,
                as_set_excluded=draw(st.integers(0, 2)),
            )
        )
    return detections


@st.composite
def roa_tables(draw):
    """A small ROA database over the same prefix space."""
    rows = draw(
        st.lists(
            st.builds(
                lambda prefix, slack, origin: Roa(
                    prefix, min(32, prefix.length + slack), origin
                ),
                prefixes,
                st.integers(0, 4),
                st.integers(1, 70000),
            ),
            max_size=6,
        )
    )
    return RoaTable(rows)


partitions = st.tuples(
    st.integers(2, 5), st.sampled_from(["hash", "range"])
)


def feed_state(detections, shard=None, roa_table=None):
    state = StudyPipeline().start(shard=shard, roa_table=roa_table)
    for detection in detections:
        state.feed_day(detection)
    return state


def feed_engine(detections, shard=None, roa_table=None):
    engine = VerdictEngine(shard=shard, roa_table=roa_table)
    for detection in detections:
        engine.feed_day(detection)
    return engine


class TestStudyStatePartitions:
    @given(detection_streams(), partitions, st.randoms(use_true_random=False))
    def test_any_partition_reproduces_serial(
        self, detections, partition, rng
    ):
        count, scheme = partition
        serial = feed_state(detections).results()
        shards = list(ShardSpec.partition(count, scheme))
        rng.shuffle(shards)  # merge order must not matter
        states = [
            feed_state(detections, shard=shard) for shard in shards
        ]
        assert StudyState.merged(states).results() == serial

    @given(detection_streams(), roa_tables())
    def test_partition_with_roa_table_reproduces_serial(
        self, detections, table
    ):
        serial = feed_state(detections, roa_table=table).results()
        states = [
            feed_state(detections, shard=shard, roa_table=table)
            for shard in ShardSpec.partition(3)
        ]
        merged = StudyState.merged(states).results()
        assert merged == serial
        assert merged.rpki_episode_states == serial.rpki_episode_states

    @given(detection_streams())
    def test_merge_is_associative(self, detections):
        a, b, c = (
            feed_state(detections, shard=shard)
            for shard in ShardSpec.partition(3)
        )
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.results() == right.results()
        assert left.shard == right.shard

    @pytest.mark.slow
    @given(
        detection_streams(),
        st.integers(2, 8),
        st.sampled_from(["hash", "range"]),
        st.randoms(use_true_random=False),
    )
    def test_deep_partition_sweep(self, detections, count, scheme, rng):
        serial = feed_state(detections).results()
        shards = list(ShardSpec.partition(count, scheme))
        rng.shuffle(shards)
        states = [
            feed_state(detections, shard=shard) for shard in shards
        ]
        # Fold in pairs from a shuffled order: a different merge tree
        # than the left fold StudyState.merged performs.
        while len(states) > 1:
            states = [
                states[i].merge(states[i + 1])
                if i + 1 < len(states)
                else states[i]
                for i in range(0, len(states), 2)
            ]
        assert states[0].results() == serial


class TestVerdictEnginePartitions:
    @given(detection_streams(), partitions, st.randoms(use_true_random=False))
    def test_any_partition_reproduces_serial(
        self, detections, partition, rng
    ):
        count, scheme = partition
        serial = feed_engine(detections).finalize()
        shards = list(ShardSpec.partition(count, scheme))
        rng.shuffle(shards)
        engines = [
            feed_engine(detections, shard=shard) for shard in shards
        ]
        assert VerdictEngine.merged(engines).finalize() == serial

    @given(detection_streams(), roa_tables())
    def test_partition_with_roa_table_reproduces_serial(
        self, detections, table
    ):
        serial = feed_engine(detections, roa_table=table).finalize()
        engines = [
            feed_engine(detections, shard=shard, roa_table=table)
            for shard in ShardSpec.partition(4)
        ]
        merged = VerdictEngine.merged(engines)
        assert merged.finalize() == serial
        assert merged.roa_table == table

    @given(detection_streams())
    def test_merge_is_associative(self, detections):
        a, b, c = (
            feed_engine(detections, shard=shard)
            for shard in ShardSpec.partition(3)
        )
        assert a.merge(b).merge(c).finalize() == a.merge(
            b.merge(c)
        ).finalize()

    @pytest.mark.slow
    @given(
        detection_streams(),
        st.integers(2, 8),
        st.sampled_from(["hash", "range"]),
        roa_tables(),
    )
    def test_deep_partition_sweep_with_rpki(
        self, detections, count, scheme, table
    ):
        serial = feed_engine(detections, roa_table=table).finalize()
        engines = [
            feed_engine(detections, shard=shard, roa_table=table)
            for shard in ShardSpec.partition(count, scheme)
        ]
        assert VerdictEngine.merged(engines).finalize() == serial


class TestMergeAlgebraRegistry:
    """The registry contract `repro check` enforces statically."""

    @pytest.mark.parametrize("dotted", MERGE_ALGEBRA_REGISTRY)
    def test_registered_class_has_full_algebra(self, dotted):
        module_name, _, class_name = dotted.rpartition(".")
        cls = getattr(importlib.import_module(module_name), class_name)
        assert callable(cls.merge)
        assert callable(cls.state_dict)
        assert callable(cls.from_state)

    @given(detection_streams(), roa_tables())
    def test_engine_state_survives_json_roundtrip(self, detections, table):
        engine = feed_engine(detections, roa_table=table)
        payload = json.loads(json.dumps(engine.state_dict()))
        clone = VerdictEngine.from_state(payload)
        assert clone.finalize() == engine.finalize()
        assert clone.state_dict() == engine.state_dict()

    @given(detection_streams(), partitions)
    def test_restored_engines_still_merge(self, detections, partition):
        """from_state output is a full citizen of the merge algebra."""
        count, scheme = partition
        serial = feed_engine(detections).finalize()
        engines = [
            VerdictEngine.from_state(
                json.loads(
                    json.dumps(
                        feed_engine(detections, shard=shard).state_dict()
                    )
                )
            )
            for shard in ShardSpec.partition(count, scheme)
        ]
        assert VerdictEngine.merged(engines).finalize() == serial
