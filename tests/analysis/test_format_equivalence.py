"""Golden suite: one world, two archive formats, identical science.

A single generated world is archived as v1 (directly), as v2
(directly), and as v2 via ``convert_archive`` — and every consumer
must be unable to tell them apart: ``StudyResults`` (byte-identical
rendered output included), verdicts, and evaluation scores, across
every ``workers`` × ``shards`` combination the parallel suite already
exercises, plus checkpoints that resume across formats.

``REPRO_TEST_WORKERS`` overrides the pool size, mirroring
``tests/analysis/test_parallel.py``, so CI re-runs this file at
``--workers 2``.
"""

import datetime
import os

import pytest

from repro.analysis.pipeline import StudyPipeline
from repro.api.renderers import render
from repro.api.service import MoasService
from repro.api.sources import ArchiveSource
from repro.scenario.archive import ArchiveReader, convert_archive
from repro.scenario.incidents import IncidentScript
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "4"))

CALENDAR = StudyCalendar(
    datetime.date(1998, 3, 20), datetime.date(1998, 4, 30)
)  # spans the 1998 fault spike, like the parallel equality suite
WINDOW = (datetime.date(1998, 3, 20), datetime.date(1998, 4, 30))

#: Every workers x shards layout the parallel suite tests.
LAYOUTS = [(1, 1), (WORKERS, 1), (1, 8), (WORKERS, 3)]


def _config(archive_format):
    return ScenarioConfig(
        scale=0.02,
        calendar=CALENDAR,
        paper_archive_gaps=False,
        incidents=IncidentScript.canned(CALENDAR.num_days),
        archive_format=archive_format,
    )


@pytest.fixture(scope="module")
def archives(tmp_path_factory):
    base = tmp_path_factory.mktemp("format-equivalence")
    v1 = base / "v1"
    v2 = base / "v2"
    simulate_study(v1, _config("v1"))
    simulate_study(v2, _config("v2"))
    converted = base / "converted"
    convert_archive(v1, converted, format="v2")
    return {"v1": v1, "v2": v2, "converted": converted}


@pytest.fixture(scope="module")
def pipeline():
    return StudyPipeline(classification_window=WINDOW)


@pytest.fixture(scope="module")
def golden_results(pipeline, archives):
    """The reference: a serial run over the v1 archive."""
    return pipeline.run(ArchiveSource(archives["v1"]))


class TestDayStreamEquivalence:
    def test_same_records_every_format(self, archives):
        reference = list(ArchiveReader(archives["v1"]).iter_days())
        assert list(ArchiveReader(archives["v2"]).iter_days()) == reference
        assert (
            list(ArchiveReader(archives["converted"]).iter_days())
            == reference
        )

    def test_side_files_survive_conversion(self, archives):
        v1 = ArchiveReader(archives["v1"])
        converted = ArchiveReader(archives["converted"])
        assert converted.has_incidents()
        assert converted.incident_labels() == v1.incident_labels()
        assert converted.ground_truth() == v1.ground_truth()


class TestStudyResultsEquivalence:
    @pytest.mark.parametrize("workers,shards", LAYOUTS)
    def test_every_layout_matches_golden(
        self, pipeline, archives, golden_results, workers, shards
    ):
        for name in ("v2", "converted"):
            results = pipeline.run(
                ArchiveSource(archives[name]),
                workers=workers,
                shards=shards,
            )
            assert results == golden_results

    def test_rendered_output_byte_identical(
        self, pipeline, archives, golden_results
    ):
        results_v2 = pipeline.run(
            ArchiveSource(archives["v2"]), workers=WORKERS, shards=3
        )
        for figure, format in (
            ("summary", "json"),
            ("summary", "ascii"),
            ("figure1", "csv"),
            ("figure3", "csv"),
            ("episodes", "csv"),
        ):
            assert render(results_v2, figure, format) == render(
                golden_results, figure, format
            )


class TestScanPathEquivalence:
    """The object-row reference scan is interchangeable with columnar.

    ``golden_results`` comes from the default (columnar) path; forcing
    the ``REPRO_OBJECT_SCAN`` escape hatch must reproduce it exactly on
    both formats at every layout — workers inherit the environment, so
    the toggle reaches the parallel scan paths too.
    """

    @pytest.mark.parametrize("workers,shards", LAYOUTS)
    def test_object_path_matches_columnar_golden(
        self, pipeline, archives, golden_results, workers, shards, monkeypatch
    ):
        monkeypatch.setenv("REPRO_OBJECT_SCAN", "1")
        for name in ("v1", "v2"):
            results = pipeline.run(
                ArchiveSource(archives[name]),
                workers=workers,
                shards=shards,
            )
            assert results == golden_results


class TestVerdictAndEvaluationEquivalence:
    @pytest.fixture(scope="class")
    def golden_report(self, archives):
        return MoasService().evaluate(archives["v1"])

    @pytest.mark.parametrize("workers,shards", [(1, 1), (WORKERS, 2)])
    def test_scores_identical_across_formats(
        self, archives, golden_report, workers, shards
    ):
        for name in ("v2", "converted"):
            report = MoasService(workers=workers, shards=shards).evaluate(
                archives[name]
            )
            assert report.verdicts == golden_report.verdicts
            assert report.result.to_dict() == golden_report.result.to_dict()
            assert render(report.result, "evaluation", "json") == render(
                golden_report.result, "evaluation", "json"
            )


class TestCheckpointAcrossFormats:
    def test_resume_on_other_format_matches_straight_run(
        self, archives, golden_results, tmp_path
    ):
        """Feed v1 halfway, checkpoint, finish from the v2 archive."""
        detections = list(ArchiveSource(archives["v1"]).detections())
        midpoint = len(detections) // 2
        first = MoasService(
            StudyPipeline(classification_window=WINDOW), shards=2
        )
        first.feed(detections[:midpoint])
        checkpoint = tmp_path / "cross-format.ckpt"
        first.save_checkpoint(checkpoint)

        resumed = MoasService.load_checkpoint(checkpoint, workers=WORKERS)
        resumed.feed(archives["v2"], skip_seen=True)
        assert resumed.results() == golden_results
