"""Golden episode-index fixture: pinned answers + corruption paths.

``tests/fixtures/episode_index/golden.idx`` is a committed index file
built from a fixed hand-crafted study (with ROAs and verdicts) by
``make_episode_index_fixture.py``.  This module pins the file bytes
and the exact answers its queries produce, so the on-disk format can
never silently drift: a load failure means old index files stopped
parsing, a digest mismatch means they parse into different science.
It also drives every corruption path — truncated trailer, bit-flipped
frame, bad magic — through :class:`ArchiveError`.
"""

import datetime
import hashlib
import json
from pathlib import Path

import pytest

from repro.analysis.index import EpisodeIndex
from repro.netbase.prefix import Prefix
from repro.scenario.archive import ArchiveError

GOLDEN = Path(__file__).parent.parent / "fixtures" / "episode_index" / "golden.idx"

#: sha256 of the committed index file.  Only an intentional,
#: documented format change (a ``_VERSION`` bump) may update these —
#: regenerate via make_episode_index_fixture.py.
GOLDEN_FILE_DIGEST = (
    "f5bf1f51962c572d15c09fff572d3fb4001e5defc8a20dace23f4190c7bb66f6"
)

#: (prefix, query kwargs, sha256 of the sorted-key JSON answer).
GOLDEN_QUERIES = (
    (
        "10.0.0.0/8",
        {},
        "85d82f47a64560d7bf6b12079211aec3578e39e885ab24ef4840af27bbc8a38f",
    ),
    (
        "192.0.2.0/24",
        {"day": datetime.date(1998, 1, 2)},
        "67eb85119be8ccce29cebaf9fe8bbd1eb41a8462001bb68f2cbde1c6fe0f114f",
    ),
    (
        "172.16.0.0/12",
        {
            "window": (
                datetime.date(1998, 1, 1),
                datetime.date(1998, 1, 3),
            )
        },
        "8cd07a5907f1657ea66aa00b7348c7001d0f2a4e4efe252d87d4c9bd0ea2e50e",
    ),
)


class TestGoldenAnswers:
    def test_fixture_bytes_are_pinned(self):
        digest = hashlib.sha256(GOLDEN.read_bytes()).hexdigest()
        assert digest == GOLDEN_FILE_DIGEST

    def test_rebuilding_the_fixture_study_reproduces_the_file(self):
        import sys

        sys.path.insert(0, str(GOLDEN.parent.parent))
        try:
            from make_episode_index_fixture import build
        finally:
            sys.path.pop(0)
        assert build().to_bytes() == GOLDEN.read_bytes()

    @pytest.mark.parametrize(
        "prefix_text,kwargs,expected",
        GOLDEN_QUERIES,
        ids=[row[0] for row in GOLDEN_QUERIES],
    )
    def test_pinned_queries_answer_to_exact_digest(
        self, prefix_text, kwargs, expected
    ):
        index = EpisodeIndex.load(GOLDEN)
        answer = index.query(Prefix.parse(prefix_text), **kwargs)
        blob = json.dumps(answer.to_dict(), sort_keys=True)
        assert hashlib.sha256(blob.encode()).hexdigest() == expected

    def test_golden_contents_read_back(self):
        index = EpisodeIndex.load(GOLDEN)
        assert len(index) == 3
        assert index.days_indexed == 5
        assert index.last_day == datetime.date(1998, 1, 5)
        record = index.lookup(Prefix.parse("10.0.0.0/8"))
        assert record.origins == (7, 9, 11)
        assert record.rpki_state == "invalid"
        assert record.verdict_kind == "exact_hijack"
        assert record.suspicion == 1.0
        assert index.lookup(Prefix.parse("172.16.0.0/12")).one_time


class TestCorruptionPaths:
    """Every way the file can rot raises ArchiveError, nothing else."""

    def corrupt(self, tmp_path, mutate) -> Path:
        raw = bytearray(GOLDEN.read_bytes())
        mutate(raw)
        path = tmp_path / "corrupt.idx"
        path.write_bytes(bytes(raw))
        return path

    def test_truncated_trailer(self, tmp_path):
        path = self.corrupt(tmp_path, lambda raw: raw.__delitem__(
            slice(len(raw) - 11, len(raw))
        ))
        with pytest.raises(ArchiveError, match="end magic|truncated"):
            EpisodeIndex.load(path)

    def test_truncated_to_almost_nothing(self, tmp_path):
        path = tmp_path / "stub.idx"
        path.write_bytes(GOLDEN.read_bytes()[:8])
        with pytest.raises(ArchiveError, match="truncated"):
            EpisodeIndex.load(path)

    @pytest.mark.parametrize("offset", (10, 60, 150, 220))
    def test_bit_flip_anywhere_fails_a_checksum(self, tmp_path, offset):
        def flip(raw):
            raw[offset] ^= 0x40

        path = self.corrupt(tmp_path, flip)
        with pytest.raises(ArchiveError):
            EpisodeIndex.load(path)

    def test_bad_leading_magic(self, tmp_path):
        def stomp(raw):
            raw[:4] = b"NOPE"

        path = self.corrupt(tmp_path, stomp)
        with pytest.raises(ArchiveError, match="bad magic"):
            EpisodeIndex.load(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.idx"
        path.write_bytes(b"")
        with pytest.raises(ArchiveError, match="truncated"):
            EpisodeIndex.load(path)

    def test_missing_file_names_the_fix(self, tmp_path):
        with pytest.raises(
            ArchiveError, match="repro analyze --index"
        ):
            EpisodeIndex.load(tmp_path / "absent.idx")
