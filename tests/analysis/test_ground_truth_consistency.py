"""End-to-end invariant: every generated conflict is actually detected.

The generator only admits events it deems visible at the collector; the
detector must therefore find each event's prefix in conflict on at
least one observed day.  Any divergence means the generator's
visibility model and the detector disagree — the strongest consistency
check the architecture allows without the pipeline peeking at ground
truth.
"""

import datetime

import pytest

from repro.analysis.sources import detections_from_archive
from repro.netbase.prefix import Prefix
from repro.scenario.archive import ArchiveReader
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1998, 2, 15)
)  # 100 days


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    directory = tmp_path_factory.mktemp("consistency")
    config = ScenarioConfig(
        scale=0.02, calendar=CALENDAR, paper_archive_gaps=False
    )
    simulate_study(directory, config)
    return directory


def test_every_visible_event_detected(study):
    detected_prefixes: set[Prefix] = set()
    detected_origin_sets: dict[Prefix, set[int]] = {}
    for detection in detections_from_archive(study):
        for conflict in detection.conflicts:
            detected_prefixes.add(conflict.prefix)
            detected_origin_sets.setdefault(
                conflict.prefix, set()
            ).update(conflict.origins)

    truth = ArchiveReader(study).ground_truth()
    assert truth
    missing = []
    for entry in truth:
        prefix = Prefix.parse(entry["prefix"])
        # Events wholly outside the archive window (ended before day 0
        # never happens; ongoing ones are clamped) must be detected.
        if prefix not in detected_prefixes:
            missing.append(entry)
    assert not missing, (
        f"{len(missing)} ground-truth events never detected, e.g. "
        f"{missing[:3]}"
    )


def test_detected_origins_cover_event_origins(study):
    detected_origin_sets: dict[Prefix, set[int]] = {}
    for detection in detections_from_archive(study):
        for conflict in detection.conflicts:
            detected_origin_sets.setdefault(
                conflict.prefix, set()
            ).update(conflict.origins)

    for entry in ArchiveReader(study).ground_truth():
        prefix = Prefix.parse(entry["prefix"])
        seen = detected_origin_sets.get(prefix, set())
        event_origins = set(entry["origins"])
        # At least two of the event's origins must have surfaced
        # (visibility may hide some of a >2-origin set, never all).
        assert len(seen & event_origins) >= 2, (
            f"{prefix}: event origins {event_origins}, detected {seen}"
        )


def test_no_detection_without_cause(study):
    """Conversely: every detected conflict traces back to some event."""
    truth_prefixes = {
        Prefix.parse(entry["prefix"])
        for entry in ArchiveReader(study).ground_truth()
    }
    for detection in detections_from_archive(study):
        for conflict in detection.conflicts:
            assert conflict.prefix in truth_prefixes, (
                f"spurious conflict on {conflict.prefix}"
            )
