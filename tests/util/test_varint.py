"""The LEB128 varint codec under the v2 day store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.varint import (
    MAX_VARINT_BYTES,
    MAX_VARINT_VALUE,
    append_uvarint,
    decode_uvarint,
    encode_uvarint,
)


class TestEncode:
    def test_single_byte_values(self):
        assert encode_uvarint(0) == b"\x00"
        assert encode_uvarint(1) == b"\x01"
        assert encode_uvarint(127) == b"\x7f"

    def test_multi_byte_boundaries(self):
        assert encode_uvarint(128) == b"\x80\x01"
        assert encode_uvarint(300) == b"\xac\x02"  # the protobuf example
        assert len(encode_uvarint(1 << 63)) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="unsigned"):
            encode_uvarint(-1)

    def test_oversized_rejected(self):
        with pytest.raises(ValueError, match="64 bits"):
            encode_uvarint(MAX_VARINT_VALUE + 1)

    def test_append_extends_in_place(self):
        out = bytearray(b"\xff")
        append_uvarint(out, 128)
        assert bytes(out) == b"\xff\x80\x01"


class TestDecode:
    def test_roundtrip_boundaries(self):
        for value in (0, 1, 127, 128, 16383, 16384, 2**32, MAX_VARINT_VALUE):
            assert decode_uvarint(encode_uvarint(value)) == (
                value,
                len(encode_uvarint(value)),
            )

    def test_position_advances_through_stream(self):
        stream = encode_uvarint(7) + encode_uvarint(300) + encode_uvarint(0)
        value, pos = decode_uvarint(stream, 0)
        assert value == 7
        value, pos = decode_uvarint(stream, pos)
        assert value == 300
        value, pos = decode_uvarint(stream, pos)
        assert (value, pos) == (0, len(stream))

    def test_truncated_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_uvarint(b"\x80")
        with pytest.raises(ValueError, match="truncated"):
            decode_uvarint(b"", 0)

    def test_overlong_raises(self):
        with pytest.raises(ValueError, match="longer than"):
            decode_uvarint(b"\x80" * (MAX_VARINT_BYTES + 1))

    def test_decodes_from_memoryview(self):
        view = memoryview(encode_uvarint(99999))
        assert decode_uvarint(view)[0] == 99999


@given(st.integers(min_value=0, max_value=MAX_VARINT_VALUE))
def test_roundtrip_property(value):
    encoded = encode_uvarint(value)
    assert len(encoded) <= MAX_VARINT_BYTES
    assert decode_uvarint(encoded) == (value, len(encoded))
