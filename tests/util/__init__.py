"""Test package: tests/util."""
