"""Tests for text table and ASCII plot rendering."""

import pytest

from repro.util.ascii_plot import bar_chart, line_plot
from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(
            ["Year", "Median"], [[1998, 683], [1999, 810.5]]
        )
        lines = text.splitlines()
        assert "Year" in lines[0] and "Median" in lines[0]
        assert "683" in text and "810.5" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="Fig 2")
        assert text.splitlines()[0] == "Fig 2"

    def test_numeric_right_alignment(self):
        text = format_table(["n"], [[1], [1000]])
        rows = text.splitlines()[-2:]
        # Right-aligned: the short number is indented.
        assert rows[0].endswith("   1")
        assert rows[1].endswith("1000")

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestLinePlot:
    def test_contains_marker_and_legend(self):
        text = line_plot({"conflicts": [1, 5, 3, 8, 2]}, width=20, height=5)
        assert "*" in text
        assert "legend: *=conflicts" in text

    def test_log_scale_handles_zeros(self):
        text = line_plot({"s": [0, 10, 100, 1000]}, y_log=True, width=10, height=4)
        assert "legend" in text

    def test_multiple_series(self):
        text = line_plot(
            {"a": [1, 2], "b": [2, 1], "c": [3, 3]}, width=10, height=4
        )
        assert "*=a" in text and "+=b" in text and "o=c" in text

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            line_plot({"a": [1, 2], "b": [1]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": []})

    def test_constant_series(self):
        # Flat series must not divide by zero.
        text = line_plot({"flat": [5, 5, 5]}, width=10, height=4)
        assert "*" in text

    def test_x_labels(self):
        text = line_plot(
            {"a": [1, 2]}, width=20, height=4, x_labels=("11/97", "07/01")
        )
        assert "11/97" in text and "07/01" in text


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart(["/23", "/24"], [10, 100], width=20)
        short, long = text.splitlines()
        assert long.count("#") > short.count("#")

    def test_zero_value_has_no_bar(self):
        text = bar_chart(["a", "b"], [0, 5], width=10)
        first = text.splitlines()[0]
        assert "#" not in first

    def test_log_scale(self):
        text = bar_chart(["a", "b"], [1, 1000], width=30, y_log=True)
        assert "#" in text

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart([], [])
