"""Tests for deterministic named RNG streams."""

from repro.util.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_root_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_path_structure_matters(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestRngStreams:
    def test_python_streams_reproducible(self):
        first = RngStreams(42).python("events").random()
        second = RngStreams(42).python("events").random()
        assert first == second

    def test_numpy_streams_reproducible(self):
        first = RngStreams(42).numpy("topology").integers(0, 1 << 30)
        second = RngStreams(42).numpy("topology").integers(0, 1 << 30)
        assert first == second

    def test_streams_independent_of_creation_order(self):
        streams_ab = RngStreams(42)
        value_a_first = streams_ab.python("a").random()
        streams_ab.python("b").random()

        streams_ba = RngStreams(42)
        streams_ba.python("b").random()
        value_a_second = streams_ba.python("a").random()
        assert value_a_first == value_a_second

    def test_stream_caching_returns_same_object(self):
        streams = RngStreams(1)
        assert streams.python("x") is streams.python("x")
        assert streams.numpy("x") is streams.numpy("x")

    def test_child_streams_are_namespaced(self):
        parent = RngStreams(42)
        child = parent.child("scenario")
        assert child.root_seed != parent.root_seed
        # Child streams are reproducible too.
        assert (
            RngStreams(42).child("scenario").python("x").random()
            == child.python("x").random()
        )

    def test_different_streams_give_different_values(self):
        streams = RngStreams(42)
        values = {streams.python(name).random() for name in "abcdef"}
        assert len(values) == 6


class TestStreamIndependence:
    """Draw-count isolation: the property the determinism rule exists
    to protect.  Consuming one stream must never perturb another."""

    def test_extra_python_draws_do_not_shift_sibling_streams(self):
        control = RngStreams(42)
        baseline = [control.python("events").random() for _ in range(5)]

        noisy = RngStreams(42)
        for _ in range(1000):  # a component grew new draws
            noisy.python("topology").random()
        assert [
            noisy.python("events").random() for _ in range(5)
        ] == baseline

    def test_extra_numpy_draws_do_not_shift_sibling_streams(self):
        control = RngStreams(7)
        baseline = control.numpy("faults").integers(0, 1 << 30, size=8)

        noisy = RngStreams(7)
        noisy.numpy("growth").random(size=4096)
        assert list(
            noisy.numpy("faults").integers(0, 1 << 30, size=8)
        ) == list(baseline)

    def test_python_and_numpy_streams_of_one_name_are_independent(self):
        control = RngStreams(7)
        baseline = [control.python("mix").random() for _ in range(5)]

        noisy = RngStreams(7)
        noisy.numpy("mix").random(size=1024)
        assert [
            noisy.python("mix").random() for _ in range(5)
        ] == baseline

    def test_child_factories_do_not_share_state_with_parent(self):
        parent = RngStreams(42)
        parent_child = parent.child("sub")
        baseline = [parent_child.python("x").random() for _ in range(3)]

        perturbed = RngStreams(42)
        for _ in range(100):
            perturbed.python("x").random()  # parent-level stream
        child = perturbed.child("sub")
        assert [child.python("x").random() for _ in range(3)] == baseline

    def test_sibling_children_are_independent(self):
        first = RngStreams(42)
        baseline = first.child("a").python("x").random()

        second = RngStreams(42)
        second.child("b").python("x").random()  # consume a sibling
        assert second.child("a").python("x").random() == baseline
