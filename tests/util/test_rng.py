"""Tests for deterministic named RNG streams."""

from repro.util.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_root_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_path_structure_matters(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestRngStreams:
    def test_python_streams_reproducible(self):
        first = RngStreams(42).python("events").random()
        second = RngStreams(42).python("events").random()
        assert first == second

    def test_numpy_streams_reproducible(self):
        first = RngStreams(42).numpy("topology").integers(0, 1 << 30)
        second = RngStreams(42).numpy("topology").integers(0, 1 << 30)
        assert first == second

    def test_streams_independent_of_creation_order(self):
        streams_ab = RngStreams(42)
        value_a_first = streams_ab.python("a").random()
        streams_ab.python("b").random()

        streams_ba = RngStreams(42)
        streams_ba.python("b").random()
        value_a_second = streams_ba.python("a").random()
        assert value_a_first == value_a_second

    def test_stream_caching_returns_same_object(self):
        streams = RngStreams(1)
        assert streams.python("x") is streams.python("x")
        assert streams.numpy("x") is streams.numpy("x")

    def test_child_streams_are_namespaced(self):
        parent = RngStreams(42)
        child = parent.child("scenario")
        assert child.root_seed != parent.root_seed
        # Child streams are reproducible too.
        assert (
            RngStreams(42).child("scenario").python("x").random()
            == child.python("x").random()
        )

    def test_different_streams_give_different_values(self):
        streams = RngStreams(42)
        values = {streams.python(name).random() for name in "abcdef"}
        assert len(values) == 6
