"""Tests for the study calendar."""

import datetime

import pytest

from repro.util.dates import (
    PAPER_CALENDAR,
    PAPER_SNAPSHOT_DAYS,
    StudyCalendar,
    date_range,
    parse_date,
)


class TestParseDate:
    def test_iso_format(self):
        assert parse_date("1998-04-07") == datetime.date(1998, 4, 7)

    def test_compact_format(self):
        assert parse_date("20010406") == datetime.date(2001, 4, 6)

    def test_us_format(self):
        assert parse_date("04/07/1998") == datetime.date(1998, 4, 7)

    def test_whitespace_rejected_inside(self):
        with pytest.raises(ValueError):
            parse_date("1998 04 07")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            parse_date("not-a-date")


class TestDateRange:
    def test_single_day(self):
        day = datetime.date(2001, 7, 18)
        assert list(date_range(day, day)) == [day]

    def test_inclusive_bounds(self):
        days = list(
            date_range(datetime.date(2000, 2, 27), datetime.date(2000, 3, 1))
        )
        assert days[0] == datetime.date(2000, 2, 27)
        assert days[-1] == datetime.date(2000, 3, 1)
        assert len(days) == 4  # leap year: Feb 29 included

    def test_reversed_bounds_raise(self):
        with pytest.raises(ValueError):
            list(
                date_range(
                    datetime.date(2001, 1, 2), datetime.date(2001, 1, 1)
                )
            )


class TestStudyCalendar:
    def test_paper_window_spans_1349_calendar_days(self):
        # Figure 1 runs 1997-11-08 .. 2001-07-18 — 1349 calendar days —
        # while the paper reports 1279 archived snapshots within it.
        assert PAPER_CALENDAR.num_days == 1349
        assert PAPER_SNAPSHOT_DAYS == 1279
        assert PAPER_SNAPSHOT_DAYS <= PAPER_CALENDAR.num_days

    def test_index_roundtrip(self):
        calendar = PAPER_CALENDAR
        for index in (0, 1, 500, calendar.num_days - 1):
            assert calendar.index_of(calendar.date_of(index)) == index

    def test_index_of_start_and_end(self):
        assert PAPER_CALENDAR.index_of(PAPER_CALENDAR.start) == 0
        assert (
            PAPER_CALENDAR.index_of(PAPER_CALENDAR.end)
            == PAPER_CALENDAR.num_days - 1
        )

    def test_out_of_window_raises(self):
        with pytest.raises(KeyError):
            PAPER_CALENDAR.index_of(datetime.date(1997, 11, 7))
        with pytest.raises(KeyError):
            PAPER_CALENDAR.index_of(datetime.date(2001, 7, 19))

    def test_date_of_out_of_range(self):
        with pytest.raises(IndexError):
            PAPER_CALENDAR.date_of(-1)
        with pytest.raises(IndexError):
            PAPER_CALENDAR.date_of(PAPER_CALENDAR.num_days)

    def test_contains(self):
        assert datetime.date(1998, 4, 7) in PAPER_CALENDAR
        assert datetime.date(2002, 1, 1) not in PAPER_CALENDAR

    def test_years(self):
        assert PAPER_CALENDAR.years() == [1997, 1998, 1999, 2000, 2001]

    def test_year_slice_full_year(self):
        lo, hi = PAPER_CALENDAR.year_slice(1999)
        assert PAPER_CALENDAR.date_of(lo) == datetime.date(1999, 1, 1)
        assert PAPER_CALENDAR.date_of(hi - 1) == datetime.date(1999, 12, 31)
        assert hi - lo == 365

    def test_year_slice_partial_first_year(self):
        lo, hi = PAPER_CALENDAR.year_slice(1997)
        assert lo == 0
        assert PAPER_CALENDAR.date_of(hi - 1) == datetime.date(1997, 12, 31)

    def test_year_slice_partial_last_year(self):
        lo, hi = PAPER_CALENDAR.year_slice(2001)
        assert PAPER_CALENDAR.date_of(lo) == datetime.date(2001, 1, 1)
        assert hi == PAPER_CALENDAR.num_days

    def test_year_slice_outside_window_is_empty(self):
        assert PAPER_CALENDAR.year_slice(1995) == (0, 0)
        assert PAPER_CALENDAR.year_slice(2005) == (0, 0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            StudyCalendar(
                start=datetime.date(2001, 1, 2), end=datetime.date(2001, 1, 1)
            )

    def test_iteration_matches_num_days(self):
        calendar = StudyCalendar(
            start=datetime.date(2000, 1, 1), end=datetime.date(2000, 1, 10)
        )
        assert len(list(calendar)) == calendar.num_days
