"""Tests for crash-safe file writing."""

import os

import pytest

from repro.util.io import atomic_write_text


class TestAtomicWriteText:
    def test_creates_and_overwrites(self, tmp_path):
        target = tmp_path / "data.json"
        atomic_write_text(target, "first")
        assert target.read_text() == "first"
        atomic_write_text(target, "second")
        assert target.read_text() == "second"

    def test_no_temp_files_left_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "data.json", "payload")
        assert [path.name for path in tmp_path.iterdir()] == ["data.json"]

    def test_failed_replace_preserves_original(self, tmp_path, monkeypatch):
        target = tmp_path / "data.json"
        atomic_write_text(target, "intact")

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, "torn")
        assert target.read_text() == "intact"

    def test_failed_replace_cleans_temp_file(self, tmp_path, monkeypatch):
        target = tmp_path / "data.json"
        monkeypatch.setattr(
            os, "replace", lambda src, dst: (_ for _ in ()).throw(OSError())
        )
        with pytest.raises(OSError):
            atomic_write_text(target, "torn")
        assert list(tmp_path.iterdir()) == []

    def test_interrupted_write_never_touches_target(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-write leaves the destination byte-identical."""
        target = tmp_path / "data.json"
        atomic_write_text(target, "x" * 4096)

        def exploding_fsync(fd):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="disk gone"):
            atomic_write_text(target, "y" * 10)
        assert target.read_text() == "x" * 4096
