"""Shared test configuration: hypothesis profiles for the two CI legs.

Tier-1 runs the ``dev`` profile — few examples, no deadline — so the
property suites stay a smoke check and the suite stays fast.  The
dedicated ``slow`` CI leg exports ``HYPOTHESIS_PROFILE=ci`` and runs
``-m slow``: many more examples, still deadline-free (generated worlds
and process pools make per-example wall clocks too noisy for
hypothesis's default 200 ms deadline to be meaningful).
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=200,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
