"""Smoke tests: every example script runs and produces its key output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "MOAS conflicts:    1" in out
    assert "origin ASes:       [7, 8]" in out
    assert "DistinctPaths" in out
    assert "LOST (faulty origin)" in out


def test_full_study_small_scale():
    out = run_example("full_study.py", "--scale", "0.01")
    assert "MOAS study summary" in out
    assert "Fig. 2." in out
    assert "Fig. 4." in out
    assert "1998-04-07" in out  # the scripted spike is found


def test_hijack_alerting():
    out = run_example("hijack_alerting.py")
    assert out.count("moas_started") == 4
    assert out.count("moas_ended") == 4
    assert "origin NOT in registry" in out
    assert "conflicts still active: []" in out


def test_vantage_points():
    out = run_example("vantage_points.py", "--scale", "0.02")
    assert "Route Views collector" in out
    assert "single-homed stub" in out


def test_as7007_deaggregation():
    out = run_example("as7007_deaggregation.py")
    assert "BLACKHOLED at AS 7007" in out
    assert "3/3 victim blocks blackholed" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "full_study.py",
        "hijack_alerting.py",
        "vantage_points.py",
        "as7007_deaggregation.py",
    ],
)
def test_examples_have_docstrings(name):
    text = (EXAMPLES / name).read_text()
    assert text.startswith("#!/usr/bin/env python3")
    assert '"""' in text
