"""Tests for prefix allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netbase.prefix import Prefix
from repro.topology.addressing import (
    PREFIX_LENGTH_WEIGHTS,
    AddressPlan,
    PoolExhaustedError,
    SequentialAllocator,
)
from repro.util.rng import RngStreams


class TestSequentialAllocator:
    def test_allocations_are_disjoint(self):
        allocator = SequentialAllocator(Prefix.parse("10.0.0.0/8"))
        blocks = [allocator.allocate(24) for _ in range(100)]
        for index, left in enumerate(blocks):
            for right in blocks[index + 1 :]:
                assert not left.overlaps(right)

    def test_allocations_stay_inside_base(self):
        base = Prefix.parse("10.0.0.0/8")
        allocator = SequentialAllocator(base)
        for _ in range(50):
            assert base.contains(allocator.allocate(20))

    def test_mixed_lengths_align(self):
        allocator = SequentialAllocator(Prefix.parse("10.0.0.0/8"))
        first = allocator.allocate(24)
        second = allocator.allocate(16)  # must align up to a /16 boundary
        third = allocator.allocate(24)
        assert not first.overlaps(second)
        assert not second.overlaps(third)
        assert second.network % second.num_addresses == 0

    def test_exhaustion_raises(self):
        allocator = SequentialAllocator(Prefix.parse("10.0.0.0/24"))
        allocator.allocate(25)
        allocator.allocate(25)
        with pytest.raises(PoolExhaustedError):
            allocator.allocate(25)

    def test_cannot_allocate_wider_than_base(self):
        allocator = SequentialAllocator(Prefix.parse("10.0.0.0/16"))
        with pytest.raises(ValueError):
            allocator.allocate(8)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=20, max_value=28), min_size=1, max_size=60
        )
    )
    def test_disjointness_property(self, lengths):
        allocator = SequentialAllocator(Prefix.parse("10.0.0.0/8"))
        blocks = [allocator.allocate(length) for length in lengths]
        assert len(blocks) == len(lengths)
        ordered = sorted(blocks, key=lambda p: p.sort_key())
        for left, right in zip(ordered, ordered[1:]):
            assert not left.overlaps(right)


class TestAddressPlan:
    def test_lengths_honoured(self):
        plan = AddressPlan(RngStreams(1))
        for length in (8, 12, 16, 19, 24, 32):
            assert plan.allocate(length).length == length

    def test_all_allocations_disjoint_across_pools(self):
        plan = AddressPlan(RngStreams(1))
        blocks = [plan.allocate_random_length() for _ in range(500)]
        ordered = sorted(blocks, key=lambda p: p.sort_key())
        for left, right in zip(ordered, ordered[1:]):
            assert not left.overlaps(right), f"{left} overlaps {right}"

    def test_ixp_block_never_allocated(self):
        ixp_block = Prefix.parse("198.32.0.0/16")
        plan = AddressPlan(RngStreams(2))
        for _ in range(2000):
            prefix = plan.allocate_random_length()
            assert not ixp_block.overlaps(prefix)

    def test_length_distribution_shape(self):
        # /24 must dominate, /16 must be the second-biggest mass point —
        # the structure figure 5 depends on.
        plan = AddressPlan(RngStreams(3))
        counts: dict[int, int] = {}
        for _ in range(8000):
            length = plan.draw_length()
            counts[length] = counts.get(length, 0) + 1
        assert max(counts, key=counts.get) == 24
        assert counts[24] > 0.45 * 8000
        second = sorted(counts, key=counts.get, reverse=True)[1]
        assert second == 16

    def test_weights_sum_close_to_one(self):
        assert abs(sum(PREFIX_LENGTH_WEIGHTS.values()) - 1.0) < 0.01

    def test_deterministic_given_seed(self):
        first = AddressPlan(RngStreams(7))
        second = AddressPlan(RngStreams(7))
        for _ in range(100):
            assert first.allocate_random_length() == (
                second.allocate_random_length()
            )
