"""Tests: the synthetic Internet has real-Internet structure."""

import pytest

from repro.topology.generator import TopologyConfig, build_initial_model
from repro.topology.stats import (
    degree_distribution,
    gini,
    mean_as_path_length,
    summarize_model,
)
from repro.util.rng import RngStreams


@pytest.fixture(scope="module")
def model():
    built, _plan, _factory = build_initial_model(
        TopologyConfig(scale=0.05), RngStreams(42)
    )
    return built


class TestGini:
    def test_equal_values_zero(self):
        assert gini([5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-9)

    def test_extreme_inequality(self):
        assert gini([0.0, 0.0, 0.0, 100.0]) > 0.7

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_bounded(self):
        assert 0.0 <= gini([1, 5, 9, 2, 7]) <= 1.0


class TestRealism:
    def test_degree_distribution_heavy_tailed(self, model):
        distribution = degree_distribution(model.graph)
        # Most ASes have tiny degree; a few have large degree.
        small = sum(
            count for degree, count in distribution.items() if degree <= 3
        )
        assert small > 0.6 * len(model.graph)
        assert max(distribution) > 10  # a well-connected core exists

    def test_degree_inequality_like_internet(self, model):
        summary = summarize_model(model)
        # The real AS graph's degree Gini is ~0.6+; require clear
        # inequality without pinning an exact value.
        assert summary.degree_gini > 0.45

    def test_stub_dominated(self, model):
        summary = summarize_model(model)
        assert summary.stub_fraction > 0.75

    def test_multihoming_share_matches_config(self, model):
        summary = summarize_model(model)
        # Config default: 30% of stubs multihomed; allow sampling slack.
        assert 0.15 <= summary.multihomed_stub_fraction <= 0.45

    def test_paths_are_short(self, model):
        # Era measurements put mean AS-path length around 3-4 hops.
        summary = summarize_model(model)
        assert 1.5 <= summary.mean_path_length <= 5.0

    def test_mean_path_empty_inputs(self, model):
        assert mean_as_path_length(
            model.graph, origins=[], vantages=[]
        ) == 0.0

    def test_summary_counts_consistent(self, model):
        summary = summarize_model(model)
        assert summary.num_ases == len(model.graph)
        assert summary.num_links == model.graph.num_links()
        assert summary.max_degree >= summary.mean_degree
