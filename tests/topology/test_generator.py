"""Tests for the initial topology generator."""

import pytest

from repro.bgp.oracle import GaoRexfordOracle
from repro.topology.generator import (
    AS_7007,
    AS_8584,
    AS_15412,
    TIER1_ASNS,
    AsnFactory,
    TopologyConfig,
    build_initial_model,
)
from repro.topology.ixp import IXP_BLOCK
from repro.topology.model import Tier
from repro.util.rng import RngStreams


def small_config() -> TopologyConfig:
    return TopologyConfig(scale=0.02)  # ~60 ASes, ~1k prefixes


def build_small():
    return build_initial_model(small_config(), RngStreams(42))


class TestStructure:
    def test_counts_match_config(self):
        config = small_config()
        model, _plan, _factory = build_initial_model(config, RngStreams(42))
        assert model.num_ases() == config.num_ases
        assert model.num_prefixes() >= config.num_prefixes

    def test_tier1_clique(self):
        model, _, _ = build_small()
        for index, left in enumerate(TIER1_ASNS):
            for right in TIER1_ASNS[index + 1 :]:
                assert model.graph.has_link(left, right)

    def test_scripted_ases_present_and_positioned(self):
        model, _, _ = build_small()
        assert model.as_info[AS_8584].tier is Tier.STUB
        assert model.as_info[AS_7007].tier is Tier.STUB
        assert model.as_info[AS_15412].tier is Tier.TRANSIT
        # Era-correct provider relationships for the fault scripts.
        assert 3561 in model.graph.providers_of(AS_15412)
        assert 1239 in model.graph.providers_of(AS_7007)

    def test_every_as_has_a_prefix(self):
        model, _, _ = build_small()
        for asn in model.as_info:
            assert model.prefixes_of(asn), f"AS {asn} owns no prefix"

    def test_every_non_tier1_has_a_provider(self):
        model, _, _ = build_small()
        for asn, info in model.as_info.items():
            if info.tier is not Tier.TIER1:
                assert model.graph.providers_of(asn), (
                    f"AS {asn} ({info.tier}) has no provider"
                )

    def test_prefixes_disjoint(self):
        model, _, _ = build_small()
        ordered = sorted(model.prefix_owner, key=lambda p: p.sort_key())
        for left, right in zip(ordered, ordered[1:]):
            assert not left.overlaps(right)

    def test_full_reachability(self):
        # Every AS can route to every origin: the graph is connected
        # under valley-free routing (tier-1 clique guarantees it).
        model, _, _ = build_small()
        oracle = GaoRexfordOracle(model.graph)
        origin = AS_7007
        routes = oracle.routes_to(origin)
        assert set(routes) == set(model.graph.ases())

    def test_ixps_created_in_block(self):
        config = small_config()
        model, _, _ = build_initial_model(config, RngStreams(42))
        assert len(model.ixps) == config.num_ixps
        for ixp in model.ixps:
            assert IXP_BLOCK.contains(ixp.prefix)
            assert len(ixp.members) >= 2

    def test_determinism(self):
        first, _, _ = build_initial_model(small_config(), RngStreams(42))
        second, _, _ = build_initial_model(small_config(), RngStreams(42))
        assert set(first.as_info) == set(second.as_info)
        assert first.prefix_owner == second.prefix_owner

    def test_different_seed_differs(self):
        first, _, _ = build_initial_model(small_config(), RngStreams(1))
        second, _, _ = build_initial_model(small_config(), RngStreams(2))
        assert first.prefix_owner != second.prefix_owner


class TestAsnFactory:
    def test_never_reuses(self):
        factory = AsnFactory(RngStreams(1))
        seen = {factory.next_asn() for _ in range(2000)}
        assert len(seen) == 2000

    def test_reserved_never_emitted(self):
        factory = AsnFactory(RngStreams(1))
        emitted = {factory.next_asn() for _ in range(2000)}
        assert not emitted & {AS_8584, AS_15412, AS_7007, *TIER1_ASNS}

    def test_reserve_conflict_detected(self):
        factory = AsnFactory(RngStreams(1))
        asn = factory.next_asn()
        with pytest.raises(ValueError):
            factory.reserve(asn)


class TestConfigScaling:
    def test_scaled_minimum_one(self):
        config = TopologyConfig(scale=0.0001)
        assert config.scaled(5) >= 1

    def test_linear_scaling(self):
        half = TopologyConfig(scale=0.5)
        full = TopologyConfig(scale=1.0)
        assert abs(half.num_prefixes * 2 - full.num_prefixes) <= 2
