"""Tests for the daily growth model."""

from repro.topology.generator import TopologyConfig, build_initial_model
from repro.topology.growth import GrowthModel, GrowthTargets
from repro.topology.model import Tier
from repro.util.rng import RngStreams


def grown_model(num_days: int = 200, scale: float = 0.02):
    config = TopologyConfig(scale=scale)
    streams = RngStreams(42)
    model, plan, factory = build_initial_model(config, streams)
    growth = GrowthModel(
        model, plan, factory, config, streams, num_days=num_days
    )
    for day in range(num_days):
        growth.grow_one_day(day)
    return config, model


class TestGrowth:
    def test_hits_final_targets(self):
        config, model = grown_model()
        targets = GrowthTargets()
        expected_ases = config.scaled(targets.final_as_count)
        expected_prefixes = config.scaled(targets.final_prefix_count)
        assert abs(model.num_ases() - expected_ases) <= 3
        assert abs(model.num_prefixes() - expected_prefixes) <= 5

    def test_new_ases_are_stubs_with_providers(self):
        _config, model = grown_model(num_days=50)
        late_joiners = [
            info for info in model.as_info.values() if info.join_day > 0
        ]
        assert late_joiners, "growth added no ASes"
        for info in late_joiners:
            assert info.tier is Tier.STUB
            assert model.graph.providers_of(info.asn)

    def test_append_only_existing_links_untouched(self):
        config = TopologyConfig(scale=0.02)
        streams = RngStreams(42)
        model, plan, factory = build_initial_model(config, streams)
        initial_links = set(model.graph.links())
        growth = GrowthModel(
            model, plan, factory, config, streams, num_days=100
        )
        for day in range(100):
            growth.grow_one_day(day)
        final_links = set(model.graph.links())
        assert initial_links <= final_links

    def test_growth_is_deterministic(self):
        _, first = grown_model(num_days=80)
        _, second = grown_model(num_days=80)
        assert set(first.as_info) == set(second.as_info)
        assert first.prefix_owner == second.prefix_owner

    def test_all_prefixes_remain_disjoint(self):
        _config, model = grown_model(num_days=120)
        ordered = sorted(model.prefix_owner, key=lambda p: p.sort_key())
        for left, right in zip(ordered, ordered[1:]):
            assert not left.overlaps(right)

    def test_daily_report(self):
        config = TopologyConfig(scale=0.02)
        streams = RngStreams(42)
        model, plan, factory = build_initial_model(config, streams)
        growth = GrowthModel(
            model, plan, factory, config, streams, num_days=30
        )
        new_asns, new_prefixes = growth.grow_one_day(0)
        for asn in new_asns:
            assert asn in model.as_info
        for prefix in new_prefixes:
            assert prefix in model.prefix_owner
