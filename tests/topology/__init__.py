"""Test package: tests/topology."""
