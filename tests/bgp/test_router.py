"""Tests for the single-router decision process and export logic."""

import pytest

from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.policy import RouteType
from repro.bgp.relationships import Relationship
from repro.bgp.router import BgpRouter
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix

PREFIX = Prefix.parse("10.0.0.0/8")


def make_router() -> BgpRouter:
    # AS 100 with customer 42, peer 200, provider 300.
    return BgpRouter(
        100,
        {
            42: Relationship.CUSTOMER,
            200: Relationship.PEER,
            300: Relationship.PROVIDER,
        },
    )


def announce(sender: int, *path: int) -> Announcement:
    return Announcement(PREFIX, ASPath.from_sequence(path), sender)


class TestDecisionProcess:
    def test_single_route_selected(self):
        router = make_router()
        assert router.receive(announce(42, 42, 7))
        best = router.best_route(PREFIX)
        assert best is not None
        assert best.neighbor == 42
        assert best.route_type is RouteType.CUSTOMER

    def test_customer_beats_shorter_provider_route(self):
        router = make_router()
        router.receive(announce(300, 300, 7))
        router.receive(announce(42, 42, 5, 6, 7))
        assert router.best_route(PREFIX).neighbor == 42

    def test_peer_beats_provider(self):
        router = make_router()
        router.receive(announce(300, 300, 7))
        router.receive(announce(200, 200, 9, 7))
        assert router.best_route(PREFIX).neighbor == 200

    def test_shorter_path_wins_within_type(self):
        router = BgpRouter(
            100, {42: Relationship.CUSTOMER, 43: Relationship.CUSTOMER}
        )
        router.receive(
            Announcement(PREFIX, ASPath.from_sequence([42, 8, 7]), 42)
        )
        router.receive(Announcement(PREFIX, ASPath.from_sequence([43, 7]), 43))
        assert router.best_route(PREFIX).neighbor == 43

    def test_lowest_neighbor_tie_break(self):
        router = BgpRouter(
            100, {43: Relationship.CUSTOMER, 42: Relationship.CUSTOMER}
        )
        router.receive(Announcement(PREFIX, ASPath.from_sequence([43, 7]), 43))
        router.receive(Announcement(PREFIX, ASPath.from_sequence([42, 9]), 42))
        assert router.best_route(PREFIX).neighbor == 42

    def test_origination_beats_learned_routes(self):
        router = make_router()
        router.receive(announce(42, 42, 7))
        router.originate(PREFIX)
        best = router.best_route(PREFIX)
        assert best.route_type is RouteType.ORIGIN
        assert best.neighbor is None

    def test_withdraw_origin_falls_back(self):
        router = make_router()
        router.receive(announce(42, 42, 7))
        router.originate(PREFIX)
        assert router.withdraw_origin(PREFIX)
        assert router.best_route(PREFIX).neighbor == 42

    def test_withdrawal_removes_route(self):
        router = make_router()
        router.receive(announce(42, 42, 7))
        assert router.receive(Withdrawal(PREFIX, 42))
        assert router.best_route(PREFIX) is None

    def test_duplicate_withdrawal_is_noop(self):
        router = make_router()
        assert not router.receive(Withdrawal(PREFIX, 42))

    def test_implicit_replacement(self):
        router = make_router()
        router.receive(announce(42, 42, 7))
        assert router.receive(announce(42, 42, 8, 7))  # longer path now
        assert router.best_route(PREFIX).path == ASPath.from_sequence(
            [42, 8, 7]
        )

    def test_unknown_sender_rejected(self):
        router = make_router()
        with pytest.raises(KeyError, match="no session"):
            router.receive(announce(999, 999, 7))


class TestLoopPrevention:
    def test_looped_path_dropped(self):
        router = make_router()
        looped = Announcement(
            PREFIX, ASPath.from_sequence([42, 100, 7]), 42
        )
        assert not router.receive(looped)
        assert router.best_route(PREFIX) is None

    def test_looped_update_clears_previous_route(self):
        router = make_router()
        router.receive(announce(42, 42, 7))
        looped = Announcement(
            PREFIX, ASPath.from_sequence([42, 100, 7]), 42
        )
        assert router.receive(looped)  # best changed: route removed
        assert router.best_route(PREFIX) is None


class TestExport:
    def test_export_prepends_own_asn(self):
        router = make_router()
        router.receive(announce(42, 42, 7))
        update = router.export_to(PREFIX, 200)
        assert isinstance(update, Announcement)
        assert update.path == ASPath.from_sequence([100, 42, 7])

    def test_no_route_exports_withdrawal(self):
        router = make_router()
        update = router.export_to(PREFIX, 200)
        assert isinstance(update, Withdrawal)

    def test_valley_free_filtering(self):
        router = make_router()
        router.receive(announce(300, 300, 7))  # provider route
        assert isinstance(router.export_to(PREFIX, 200), Withdrawal)
        assert isinstance(router.export_to(PREFIX, 42), Announcement)

    def test_split_horizon(self):
        router = make_router()
        router.receive(announce(42, 42, 7))
        assert isinstance(router.export_to(PREFIX, 42), Withdrawal)

    def test_origin_exports_bare_asn(self):
        router = make_router()
        router.originate(PREFIX)
        update = router.export_to(PREFIX, 300)
        assert update.path == ASPath.from_sequence([100])

    def test_prepend_count(self):
        router = make_router()
        router.originate(PREFIX)
        router.set_prepend_count(300, 3)
        update = router.export_to(PREFIX, 300)
        assert update.path == ASPath.from_sequence([100, 100, 100])
        # Other neighbors unaffected.
        assert router.export_to(PREFIX, 200).path == ASPath.from_sequence(
            [100]
        )

    def test_invalid_prepend_count(self):
        router = make_router()
        with pytest.raises(ValueError):
            router.set_prepend_count(300, 0)

    def test_export_hook_overrides_route(self):
        router = make_router()
        router.receive(announce(42, 42, 7))
        router.receive(announce(200, 200, 9))
        alternate = ASPath.from_sequence([200, 9])

        def hook(prefix, best, neighbor):
            if neighbor == 300:
                return alternate
            return None

        router.export_hook = hook
        to_provider = router.export_to(PREFIX, 300)
        assert to_provider.path == ASPath.from_sequence([100, 200, 9])
        # Default behaviour preserved for others.
        to_peer = router.export_to(PREFIX, 200)
        assert to_peer.path == ASPath.from_sequence([100, 42, 7])
