"""Tests for Gao-Rexford policy rules."""

from repro.bgp.policy import RouteType, export_allowed, local_pref_for
from repro.bgp.relationships import Relationship


class TestPreference:
    def test_preference_ladder(self):
        assert (
            local_pref_for(RouteType.CUSTOMER)
            > local_pref_for(RouteType.PEER)
            > local_pref_for(RouteType.PROVIDER)
        )

    def test_origin_beats_everything(self):
        assert local_pref_for(RouteType.ORIGIN) > local_pref_for(
            RouteType.CUSTOMER
        )

    def test_route_type_order_matches_local_pref(self):
        ordered = sorted(RouteType, key=local_pref_for)
        assert ordered == sorted(RouteType, key=int)

    def test_from_relationship(self):
        assert (
            RouteType.from_relationship(Relationship.CUSTOMER)
            is RouteType.CUSTOMER
        )
        assert RouteType.from_relationship(Relationship.PEER) is RouteType.PEER
        assert (
            RouteType.from_relationship(Relationship.PROVIDER)
            is RouteType.PROVIDER
        )


class TestExportRules:
    def test_everything_exports_to_customers(self):
        for route_type in RouteType:
            assert export_allowed(route_type, Relationship.CUSTOMER)

    def test_customer_routes_export_everywhere(self):
        for relationship in Relationship:
            assert export_allowed(RouteType.CUSTOMER, relationship)

    def test_origin_routes_export_everywhere(self):
        for relationship in Relationship:
            assert export_allowed(RouteType.ORIGIN, relationship)

    def test_peer_routes_do_not_leak(self):
        assert not export_allowed(RouteType.PEER, Relationship.PEER)
        assert not export_allowed(RouteType.PEER, Relationship.PROVIDER)

    def test_provider_routes_do_not_leak(self):
        assert not export_allowed(RouteType.PROVIDER, Relationship.PEER)
        assert not export_allowed(RouteType.PROVIDER, Relationship.PROVIDER)
