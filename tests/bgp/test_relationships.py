"""Tests for the AS relationship graph."""

import pytest

from repro.bgp.relationships import ASGraph, Relationship


class TestRelationship:
    def test_inverse(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER


class TestASGraph:
    def test_add_customer_creates_both_views(self):
        graph = ASGraph()
        graph.add_customer(701, 42)
        assert graph.relationship(701, 42) is Relationship.CUSTOMER
        assert graph.relationship(42, 701) is Relationship.PROVIDER

    def test_add_peering_symmetric(self):
        graph = ASGraph()
        graph.add_peering(701, 1239)
        assert graph.relationship(701, 1239) is Relationship.PEER
        assert graph.relationship(1239, 701) is Relationship.PEER

    def test_duplicate_consistent_link_ok(self):
        graph = ASGraph()
        graph.add_customer(701, 42)
        graph.add_customer(701, 42)
        assert graph.num_links() == 1

    def test_conflicting_link_rejected(self):
        graph = ASGraph()
        graph.add_customer(701, 42)
        with pytest.raises(ValueError, match="conflicting"):
            graph.add_peering(701, 42)

    def test_self_link_rejected(self):
        graph = ASGraph()
        with pytest.raises(ValueError, match="itself"):
            graph.add_peering(701, 701)

    def test_filtered_neighbor_queries(self):
        graph = ASGraph()
        graph.add_customer(701, 42)
        graph.add_customer(701, 43)
        graph.add_peering(701, 1239)
        graph.add_customer(7018, 701)
        assert graph.customers_of(701) == [42, 43]
        assert graph.peers_of(701) == [1239]
        assert graph.providers_of(701) == [7018]

    def test_is_stub(self):
        graph = ASGraph()
        graph.add_customer(701, 42)
        assert graph.is_stub(42)
        assert not graph.is_stub(701)

    def test_unknown_as_raises(self):
        graph = ASGraph()
        with pytest.raises(KeyError):
            graph.neighbors(99)
        with pytest.raises(KeyError):
            graph.relationship(99, 100)

    def test_missing_link_raises(self):
        graph = ASGraph()
        graph.add_as(1)
        graph.add_as(2)
        with pytest.raises(KeyError, match="no link"):
            graph.relationship(1, 2)

    def test_links_enumerated_once(self):
        graph = ASGraph()
        graph.add_customer(701, 42)
        graph.add_peering(701, 1239)
        listed = list(graph.links())
        assert len(listed) == 2
        assert (701, 42, Relationship.CUSTOMER) in listed
        assert (701, 1239, Relationship.PEER) in listed

    def test_from_links_roundtrip(self):
        graph = ASGraph()
        graph.add_customer(701, 42)
        graph.add_peering(701, 1239)
        rebuilt = ASGraph.from_links(graph.links())
        assert rebuilt.relationship(42, 701) is Relationship.PROVIDER
        assert rebuilt.num_links() == graph.num_links()

    def test_copy_is_independent(self):
        graph = ASGraph()
        graph.add_customer(701, 42)
        duplicate = graph.copy()
        duplicate.add_customer(701, 43)
        assert not graph.has_link(701, 43)

    def test_len_and_contains(self):
        graph = ASGraph()
        graph.add_customer(701, 42)
        assert len(graph) == 2
        assert 701 in graph and 42 in graph and 99 not in graph
