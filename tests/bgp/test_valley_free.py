"""Property tests: converged paths are always valley-free.

Gao-Rexford export rules guarantee that any AS path in a converged
table climbs customer→provider links, crosses at most one peering
link, then descends provider→customer links.  Valley-free-ness is the
structural reason the paper's MOAS visibility behaves as it does, so
the engine and oracle are both held to it on random topologies.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.network import Network
from repro.bgp.oracle import GaoRexfordOracle
from repro.bgp.relationships import ASGraph, Relationship
from repro.netbase.prefix import Prefix

PREFIX = Prefix.parse("10.0.0.0/8")


def random_graph(seed: int, num_ases: int) -> ASGraph:
    rng = random.Random(seed)
    graph = ASGraph()
    tier1 = list(range(1, 4))
    for left in tier1:
        for right in tier1:
            if left < right:
                graph.add_peering(left, right)
    asns = list(tier1)
    for asn in range(4, num_ases + 1):
        for provider in rng.sample(asns, k=min(len(asns), rng.choice([1, 2]))):
            graph.add_customer(provider, asn)
        asns.append(asn)
    for _ in range(num_ases // 3):
        if len(asns) > 6:
            left, right = rng.sample(asns[3:], k=2)
            if not graph.has_link(left, right):
                graph.add_peering(left, right)
    return graph


def is_valley_free(graph: ASGraph, path: tuple[int, ...]) -> bool:
    """Check the up*-peer?-down* structure of an AS path.

    Phases: 0 = climbing (next hop is my provider, looking backwards),
    after a peer link or a downhill step no more uphill/peer steps are
    allowed.  Walk the path from the first AS toward the origin; each
    hop (a, b) means a learned the route from b.
    """
    # Annotate each hop with the relationship of b as seen from a.
    phase = "up"
    for a, b in zip(path, path[1:]):
        relationship = graph.relationship(a, b)
        if relationship is Relationship.CUSTOMER:
            # a -> customer b: the route came up from below; always OK,
            # but after this, only more "down" steps are allowed.
            phase = "down"
        elif relationship is Relationship.PEER:
            if phase == "down":
                return False  # peer after descending: a valley
            phase = "down"
        else:  # b is a's provider: an uphill step (route from provider)
            if phase == "down":
                return False  # climbing after descending: a valley
            # still "up"
    return True


class TestValleyFree:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_ases=st.integers(min_value=4, max_value=30),
    )
    def test_engine_paths_valley_free(self, seed, num_ases):
        graph = random_graph(seed, num_ases)
        origin = num_ases
        if origin not in graph:
            return
        network = Network(graph)
        network.originate(origin, PREFIX)
        network.run_to_convergence()
        for asn in graph.ases():
            path = network.best_path(asn, PREFIX)
            if path is None:
                continue
            hops = path.sequence_tuple()
            assert is_valley_free(graph, hops), (
                f"valley in engine path {hops}"
            )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_ases=st.integers(min_value=4, max_value=30),
    )
    def test_oracle_paths_valley_free(self, seed, num_ases):
        graph = random_graph(seed, num_ases)
        origin = num_ases
        if origin not in graph:
            return
        oracle = GaoRexfordOracle(graph)
        for asn in graph.ases():
            path = oracle.path(asn, origin)
            if path is None:
                continue
            assert is_valley_free(graph, path), (
                f"valley in oracle path {path}"
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_no_loops_in_converged_paths(self, seed):
        graph = random_graph(seed, 20)
        network = Network(graph)
        network.originate(20, PREFIX)
        network.run_to_convergence()
        for asn in graph.ases():
            path = network.best_path(asn, PREFIX)
            if path is None:
                continue
            hops = path.sequence_tuple()
            assert len(set(hops)) == len(hops), f"loop in {hops}"
