"""Tests for network-wide propagation and convergence."""

import datetime

import pytest

from repro.bgp.network import ConvergenceError, Network
from repro.bgp.relationships import ASGraph
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix

PREFIX = Prefix.parse("10.0.0.0/8")
DAY = datetime.date(2001, 4, 6)


def small_internet() -> ASGraph:
    """Two tier-1s (701, 1239) peering; transits 100, 200; stubs 7, 8, 9.

    7 is customer of 100; 8 of 200; 9 is multihomed to 100 and 200.
    """
    graph = ASGraph()
    graph.add_peering(701, 1239)
    graph.add_customer(701, 100)
    graph.add_customer(1239, 200)
    graph.add_customer(100, 7)
    graph.add_customer(200, 8)
    graph.add_customer(100, 9)
    graph.add_customer(200, 9)
    return graph


class TestPropagation:
    def test_route_reaches_everyone(self):
        network = Network(small_internet())
        network.originate(7, PREFIX)
        network.run_to_convergence()
        for asn in (100, 701, 1239, 200, 8, 9):
            assert network.best_path(asn, PREFIX) is not None

    def test_paths_are_valley_free(self):
        network = Network(small_internet())
        network.originate(8, PREFIX)
        network.run_to_convergence()
        # AS 7's path must go up through its provider chain and down.
        path = network.best_path(7, PREFIX)
        assert path == ASPath.from_sequence([7, 100, 701, 1239, 200, 8])

    def test_multihomed_stub_prefers_shortest(self):
        network = Network(small_internet())
        network.originate(9, PREFIX)
        network.run_to_convergence()
        # From AS 8, the route via 200 is shorter than via 701/1239.
        path = network.best_path(8, PREFIX)
        assert path == ASPath.from_sequence([8, 200, 9])

    def test_withdrawal_propagates(self):
        network = Network(small_internet())
        network.originate(7, PREFIX)
        network.run_to_convergence()
        network.withdraw(7, PREFIX)
        network.run_to_convergence()
        for asn in (100, 701, 1239, 200, 8, 9):
            assert network.best_path(asn, PREFIX) is None

    def test_failover_on_withdrawal(self):
        # 9 is multihomed; when one origin withdraws, routes survive
        # only if another origin exists.
        network = Network(small_internet())
        network.originate(9, PREFIX)
        network.originate(7, PREFIX)
        network.run_to_convergence()
        network.withdraw(9, PREFIX)
        network.run_to_convergence()
        path = network.best_path(8, PREFIX)
        assert path is not None
        assert path.origin() == 7

    def test_origin_path_is_bare_asn(self):
        network = Network(small_internet())
        network.originate(7, PREFIX)
        network.run_to_convergence()
        assert network.best_path(7, PREFIX) == ASPath.from_sequence([7])

    def test_forwarding_next_as(self):
        network = Network(small_internet())
        network.originate(7, PREFIX)
        network.run_to_convergence()
        assert network.forwarding_next_as(9, PREFIX) == 100
        assert network.forwarding_next_as(7, PREFIX) is None

    def test_unknown_as_raises(self):
        network = Network(small_internet())
        with pytest.raises(KeyError):
            network.originate(999, PREFIX)


class TestMoasScenarios:
    def test_hijack_creates_two_origins(self):
        # AS 8 falsely originates 7's prefix: the collector sees both.
        network = Network(small_internet())
        network.originate(7, PREFIX)
        network.originate(8, PREFIX)
        network.run_to_convergence()
        snapshot = network.collector_snapshot(DAY, [9, 701, 1239])
        assert snapshot.origins_of(PREFIX) == {7, 8}

    def test_single_vantage_may_miss_conflict(self):
        network = Network(small_internet())
        network.originate(7, PREFIX)
        network.originate(8, PREFIX)
        network.run_to_convergence()
        # AS 9 alone picks exactly one best route: no conflict visible.
        snapshot = network.collector_snapshot(DAY, [9])
        assert len(snapshot.origins_of(PREFIX)) == 1

    def test_collector_requires_convergence(self):
        network = Network(small_internet())
        network.originate(7, PREFIX)
        with pytest.raises(ConvergenceError):
            network.collector_snapshot(DAY, [9])


class TestCollectorSnapshot:
    def test_snapshot_contains_all_peer_tables(self):
        network = Network(small_internet())
        other = Prefix.parse("192.0.2.0/24")
        network.originate(7, PREFIX)
        network.originate(8, other)
        network.run_to_convergence()
        snapshot = network.collector_snapshot(DAY, [701, 1239])
        assert snapshot.num_prefixes() == 2
        assert snapshot.num_routes() == 4  # 2 peers x 2 prefixes

    def test_snapshot_prefix_filter(self):
        network = Network(small_internet())
        other = Prefix.parse("192.0.2.0/24")
        network.originate(7, PREFIX)
        network.originate(8, other)
        network.run_to_convergence()
        snapshot = network.collector_snapshot(DAY, [701], prefixes=[PREFIX])
        assert snapshot.num_prefixes() == 1

    def test_refresh_exports_after_prepend_change(self):
        network = Network(small_internet())
        network.originate(9, PREFIX)
        network.run_to_convergence()
        # 9 starts prepending towards 200; 8's path through 200 lengthens
        # enough that 8 still uses 200 (only route), but the path shows
        # the prepending.
        network.router(9).set_prepend_count(200, 3)
        network.refresh_exports(9, PREFIX)
        network.run_to_convergence()
        path = network.best_path(8, PREFIX)
        assert path == ASPath.from_sequence([8, 200, 9, 9, 9])
