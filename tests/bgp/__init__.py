"""Test package: tests/bgp."""
