"""Tests for the Gao-Rexford oracle, including agreement with the engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.network import Network
from repro.bgp.oracle import GaoRexfordOracle
from repro.bgp.policy import RouteType
from repro.bgp.relationships import ASGraph
from repro.netbase.prefix import Prefix

PREFIX = Prefix.parse("10.0.0.0/8")


def small_internet() -> ASGraph:
    graph = ASGraph()
    graph.add_peering(701, 1239)
    graph.add_customer(701, 100)
    graph.add_customer(1239, 200)
    graph.add_customer(100, 7)
    graph.add_customer(200, 8)
    graph.add_customer(100, 9)
    graph.add_customer(200, 9)
    return graph


class TestOracleRoutes:
    def test_origin_route(self):
        oracle = GaoRexfordOracle(small_internet())
        route = oracle.route(7, 7)
        assert route.route_type is RouteType.ORIGIN
        assert route.length == 0

    def test_customer_route_up_provider_chain(self):
        oracle = GaoRexfordOracle(small_internet())
        assert oracle.route(100, 7).route_type is RouteType.CUSTOMER
        assert oracle.route(701, 7).route_type is RouteType.CUSTOMER
        assert oracle.route(701, 7).length == 2

    def test_peer_route(self):
        oracle = GaoRexfordOracle(small_internet())
        route = oracle.route(1239, 7)
        assert route.route_type is RouteType.PEER
        assert route.next_hop == 701

    def test_provider_route(self):
        oracle = GaoRexfordOracle(small_internet())
        route = oracle.route(8, 7)
        assert route.route_type is RouteType.PROVIDER
        assert route.next_hop == 200

    def test_path_reconstruction(self):
        oracle = GaoRexfordOracle(small_internet())
        assert oracle.path(8, 7) == (8, 200, 1239, 701, 100, 7)

    def test_unreachable_returns_none(self):
        graph = small_internet()
        graph.add_as(9999)  # isolated AS
        oracle = GaoRexfordOracle(graph)
        assert oracle.path(9999, 7) is None
        assert oracle.route(9999, 7) is None

    def test_unknown_origin_raises(self):
        oracle = GaoRexfordOracle(small_internet())
        with pytest.raises(KeyError):
            oracle.routes_to(31337)

    def test_cache_invalidation(self):
        graph = small_internet()
        oracle = GaoRexfordOracle(graph)
        assert oracle.route(8, 7).length == 5
        graph.add_customer(200, 7)  # new shortcut
        oracle.invalidate()
        assert oracle.route(8, 7).length == 2

    def test_multihomed_customer_route_tie_break(self):
        # 9 reaches both providers; from 701 the route to 9 goes through
        # customer 100 (customer route), length 2.
        oracle = GaoRexfordOracle(small_internet())
        assert oracle.path(701, 9) == (701, 100, 9)


class TestBestOrigin:
    def test_prefers_customer_origin(self):
        oracle = GaoRexfordOracle(small_internet())
        # From 100: origin 7 is its customer; origin 8 is via provider.
        assert oracle.best_origin(100, [7, 8]) == 7

    def test_prefers_shorter_within_type(self):
        oracle = GaoRexfordOracle(small_internet())
        # From 701, origins 7 (customer, len 2) vs 9 (customer, len 2):
        # tie broken to the lowest origin ASN.
        assert oracle.best_origin(701, [9, 7]) == 7

    def test_unreachable_origins_skipped(self):
        graph = small_internet()
        graph.add_as(9999)
        oracle = GaoRexfordOracle(graph)
        assert oracle.best_origin(8, [9999, 7]) == 7
        assert oracle.best_origin(8, [9999]) is None


def random_graph(seed: int, num_ases: int) -> ASGraph:
    """A random small multi-tier topology for differential testing."""
    import random

    rng = random.Random(seed)
    graph = ASGraph()
    tier1 = list(range(1, 4))
    for left in tier1:
        for right in tier1:
            if left < right:
                graph.add_peering(left, right)
    asns = list(tier1)
    for asn in range(4, num_ases + 1):
        providers = rng.sample(asns, k=min(len(asns), rng.choice([1, 1, 2])))
        for provider in providers:
            graph.add_customer(provider, asn)
        asns.append(asn)
    # A few random peerings between non-tier1 ASes.
    for _ in range(num_ases // 4):
        left, right = rng.sample(asns[3:], k=2) if len(asns) > 5 else (None, None)
        if left and right and not graph.has_link(left, right):
            graph.add_peering(left, right)
    return graph


class TestOracleEngineAgreement:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_ases=st.integers(min_value=4, max_value=24),
    )
    def test_oracle_matches_engine_paths(self, seed, num_ases):
        """The closed-form oracle and the message engine must agree.

        Agreement is on reachability, route preference class and path
        length for every (vantage, origin) pair; the concrete path can
        differ only when tie-breaks see equivalent candidates, so we
        also require path equality (both use lowest-next-hop ties).
        """
        graph = random_graph(seed, num_ases)
        origin = num_ases  # the newest stub AS
        if origin not in graph:
            return
        network = Network(graph)
        network.originate(origin, PREFIX)
        network.run_to_convergence()
        oracle = GaoRexfordOracle(graph)
        for asn in graph.ases():
            engine_path = network.best_path(asn, PREFIX)
            oracle_path = oracle.path(asn, origin)
            if engine_path is None:
                assert oracle_path is None, (
                    f"AS {asn}: oracle found {oracle_path}, engine none"
                )
            else:
                assert oracle_path == engine_path.sequence_tuple(), (
                    f"AS {asn}: oracle {oracle_path} != engine "
                    f"{engine_path.sequence_tuple()}"
                )
