"""The unified ``repro`` CLI."""

import datetime
import json
import pathlib

import pytest

from repro.api.cli import main

ANALYSIS_FILES = (
    "figure1.csv",
    "figure3.csv",
    "figure5.csv",
    "figure6.csv",
    "episodes.csv",
    "summary.json",
    "report.txt",
)


@pytest.fixture(scope="module")
def cli_archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("unified-cli") / "archive"
    assert main(["simulate", str(directory), "--scale", "0.01"]) == 0
    return directory


class TestSimulate:
    def test_writes_archive(self, cli_archive):
        for name in ("manifest.json", "days.bin", "registry.bin"):
            assert (cli_archive / name).exists()

    def test_summary_printed(self, capsys, tmp_path):
        main(["simulate", str(tmp_path / "a"), "--scale", "0.01"])
        assert "observed_days: 1279" in capsys.readouterr().out

    def test_incidents_canned_writes_labels(self, tmp_path, capsys):
        archive = tmp_path / "incident-archive"
        code = main(
            [
                "simulate",
                str(archive),
                "--scale",
                "0.01",
                "--incidents",
                "canned",
            ]
        )
        assert code == 0
        assert "incidents_injected:" in capsys.readouterr().out
        labels = json.loads((archive / "incidents.json").read_text())
        assert labels
        assert {"kind", "prefix", "perpetrator"} <= set(labels[0])

    def test_incidents_bad_script_fails_cleanly(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                str(tmp_path / "arch"),
                "--incidents",
                str(tmp_path / "missing.json"),
            ]
        )
        assert code == 1
        assert "repro simulate:" in capsys.readouterr().err


class TestAnalyze:
    def test_produces_report_and_figures(self, cli_archive, tmp_path, capsys):
        out_dir = tmp_path / "analysis"
        assert main(["analyze", str(cli_archive), str(out_dir)]) == 0
        for name in ANALYSIS_FILES:
            assert (out_dir / name).exists(), f"{name} missing"
        printed = capsys.readouterr().out
        assert "MOAS study summary" in printed
        assert "Fig. 2." in printed

    def test_analyze_accepts_mrt_directory(self, tmp_path, capsys):
        """Analyze runs over a directory of MRT dumps (no manifest)."""
        from repro.scenario.world import ScenarioConfig, simulate_study
        from repro.util.dates import StudyCalendar

        calendar = StudyCalendar(
            datetime.date(1998, 4, 6), datetime.date(1998, 4, 12)
        )
        archive = tmp_path / "archive"
        simulate_study(
            archive,
            ScenarioConfig(
                scale=0.01,
                calendar=calendar,
                paper_archive_gaps=False,
            ),
            mrt_export_days=set(calendar),
        )
        out_dir = tmp_path / "analysis"
        assert main(["analyze", str(archive / "mrt"), str(out_dir)]) == 0
        assert (out_dir / "report.txt").exists()
        assert "MOAS study summary" in capsys.readouterr().out

    def test_analyze_profile_prints_stage_breakdown(
        self, cli_archive, tmp_path, capsys
    ):
        """--profile appends the decode/detect/fold wall-clock table."""
        out_dir = tmp_path / "profiled"
        code = main(
            ["analyze", str(cli_archive), str(out_dir), "--profile"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        # The normal report still comes out in full...
        assert "MOAS study summary" in printed
        for name in ANALYSIS_FILES:
            assert (out_dir / name).exists(), f"{name} missing"
        # ...followed by the per-stage summary and cProfile hotspots.
        assert "profile: serial feed, columnar scan" in printed
        for stage in ("decode", "detect", "fold"):
            assert stage in printed
        assert "throughput:" in printed
        assert "cumulative" in printed  # the cProfile hotspot listing

    def test_analyze_profile_object_scan_results_identical(
        self, cli_archive, tmp_path, capsys, monkeypatch
    ):
        """The escape hatch profiles the object path, same figures."""
        columnar_dir = tmp_path / "columnar"
        assert (
            main(["analyze", str(cli_archive), str(columnar_dir)]) == 0
        )
        capsys.readouterr()
        monkeypatch.setenv("REPRO_OBJECT_SCAN", "1")
        object_dir = tmp_path / "object"
        code = main(
            ["analyze", str(cli_archive), str(object_dir), "--profile"]
        )
        assert code == 0
        assert "profile: serial feed, object scan" in capsys.readouterr().out
        for name in ANALYSIS_FILES:
            assert (object_dir / name).read_bytes() == (
                columnar_dir / name
            ).read_bytes(), f"{name} differs"

    def test_analyze_profile_requires_cds_archive(self, tmp_path, capsys):
        """--profile over an MRT directory fails with a clean message."""
        mrt_dir = tmp_path / "mrt"
        mrt_dir.mkdir()
        code = main(
            [
                "analyze",
                str(mrt_dir),
                str(tmp_path / "out"),
                "--profile",
            ]
        )
        assert code == 1
        assert "requires a CDS archive" in capsys.readouterr().err

    def test_analyze_missing_archive_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["analyze", str(tmp_path / "nowhere"), str(tmp_path / "out")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "repro analyze:" in err
        assert "no CDS archive or MRT file" in err

    def test_analyze_corrupt_checkpoint_fails_cleanly(
        self, cli_archive, tmp_path, capsys
    ):
        bad = tmp_path / "bad.ckpt"
        bad.write_text('{"garbage": true}')
        code = main(
            [
                "analyze",
                str(cli_archive),
                str(tmp_path / "out"),
                "--resume",
                str(bad),
            ]
        )
        assert code == 1
        assert "unsupported checkpoint" in capsys.readouterr().err

    def test_checkpoint_resume_identical_report(
        self, cli_archive, tmp_path, capsys
    ):
        plain_dir = tmp_path / "plain"
        ckpt = tmp_path / "study.ckpt"
        assert main(
            [
                "analyze",
                str(cli_archive),
                str(plain_dir),
                "--checkpoint",
                str(ckpt),
            ]
        ) == 0
        assert ckpt.exists()
        resumed_dir = tmp_path / "resumed"
        assert main(
            [
                "analyze",
                str(cli_archive),
                str(resumed_dir),
                "--resume",
                str(ckpt),
            ]
        ) == 0
        capsys.readouterr()
        assert (resumed_dir / "report.txt").read_bytes() == (
            plain_dir / "report.txt"
        ).read_bytes()


class TestReport:
    def test_report_roundtrip(self, cli_archive, tmp_path, capsys):
        out_dir = tmp_path / "analysis"
        main(["analyze", str(cli_archive), str(out_dir)])
        capsys.readouterr()
        assert main(["report", str(out_dir)]) == 0
        assert "MOAS study summary" in capsys.readouterr().out

    def test_report_missing_dir_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nonexistent")]) == 1
        assert "no report" in capsys.readouterr().err


class TestWatch:
    @pytest.fixture()
    def update_file(self, tmp_path):
        from repro.mrt.attributes import PathAttributes
        from repro.mrt.records import Bgp4mpMessage
        from repro.mrt.writer import MrtWriter
        from repro.netbase import ASPath, Prefix

        prefix = Prefix.parse("193.0.0.0/16")

        def announce(peer: int, *path: int) -> Bgp4mpMessage:
            return Bgp4mpMessage(
                peer_asn=peer,
                local_asn=6447,
                interface_index=0,
                peer_address=0xC6200001,
                local_address=0xC6336401,
                attributes=PathAttributes(
                    as_path=ASPath.from_sequence(path)
                ),
                announced=(prefix,),
            )

        path = tmp_path / "updates.mrt"
        with open(path, "wb") as handle:
            writer = MrtWriter(handle)
            writer.write(announce(701, 701, 7).to_record(1000))
            writer.write(announce(1239, 1239, 8584).to_record(1010))
        return path

    def test_alerts_printed(self, update_file, capsys):
        assert main(["watch", str(update_file)]) == 0
        out = capsys.readouterr().out
        assert "moas_started 193.0.0.0/16" in out
        assert "origins=[7,8584]" in out
        assert "1 alerts; 1 prefixes still in MOAS" in out

    def test_expected_origins_flag_unexpected(
        self, update_file, tmp_path, capsys
    ):
        registry = tmp_path / "registry.json"
        registry.write_text(json.dumps({"193.0.0.0/16": 7}))
        assert main(
            [
                "watch",
                str(update_file),
                "--expected-origins",
                str(registry),
            ]
        ) == 0
        assert "UNEXPECTED-ORIGIN" in capsys.readouterr().out


class TestHelpText:
    """Every subcommand is discoverable from `repro --help`."""

    SUBCOMMANDS = (
        "simulate",
        "analyze",
        "convert",
        "report",
        "query",
        "evaluate",
        "watch",
        "serve",
        "check",
    )

    def test_top_level_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        help_text = capsys.readouterr().out
        for subcommand in self.SUBCOMMANDS:
            assert subcommand in help_text

    def test_check_help_names_the_rule_machinery(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--help"])
        assert excinfo.value.code == 0
        help_text = capsys.readouterr().out
        assert "--rule" in help_text
        assert "--format" in help_text
        assert "--write-schema" in help_text
        assert "repro: ignore[rule-id]" in help_text

    def test_check_subcommand_runs_the_checker(self, capsys):
        import repro

        package_dir = str(pathlib.Path(repro.__file__).parent / "util")
        assert main(["check", package_dir]) == 0
        assert "finding(s)" in capsys.readouterr().out


class TestVersion:
    """`repro --version` (the string `/v1/status` also surfaces)."""

    def test_version_flag_prints_and_exits(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_legacy_entry_points_are_gone(self):
        """The 1.1.0-deprecated shim module no longer imports."""
        with pytest.raises(ModuleNotFoundError):
            import repro.cli  # noqa: F401


class TestServeCli:
    """Argument handling of `repro serve` (the daemon itself is
    exercised end to end in test_serve.py)."""

    def test_serve_requires_some_day_source(self, capsys):
        assert main(["serve"]) == 1
        assert "day source" in capsys.readouterr().err

    def test_serve_rejects_bad_shards(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path), "--shards", "0"])
        assert code == 1
        assert "--shards must be >= 1" in capsys.readouterr().err


class TestParallelFlags:
    def test_parallel_analysis_byte_identical(
        self, cli_archive, tmp_path, capsys
    ):
        """`--workers`/`--shards` never change a single output byte."""
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        assert main(["analyze", str(cli_archive), str(serial_dir)]) == 0
        serial_stdout = capsys.readouterr().out
        assert (
            main(
                [
                    "analyze",
                    str(cli_archive),
                    str(parallel_dir),
                    "--workers",
                    "2",
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        parallel_stdout = capsys.readouterr().out
        assert serial_stdout == parallel_stdout
        for name in ANALYSIS_FILES:
            assert (serial_dir / name).read_bytes() == (
                parallel_dir / name
            ).read_bytes(), f"{name} differs"

    def test_workers_auto_accepted(self, cli_archive, tmp_path):
        out_dir = tmp_path / "auto"
        assert (
            main(
                [
                    "analyze",
                    str(cli_archive),
                    str(out_dir),
                    "--workers",
                    "auto",
                ]
            )
            == 0
        )
        assert (out_dir / "report.txt").exists()

    def test_workers_rejects_garbage(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "analyze",
                    str(tmp_path),
                    str(tmp_path / "out"),
                    "--workers",
                    "many",
                ]
            )
        assert "workers must be" in capsys.readouterr().err

    def test_sharded_checkpoint_resume_via_cli(
        self, cli_archive, tmp_path, capsys
    ):
        checkpoint = tmp_path / "sharded.ckpt"
        out_dir = tmp_path / "out"
        assert (
            main(
                [
                    "analyze",
                    str(cli_archive),
                    str(out_dir),
                    "--shards",
                    "2",
                    "--checkpoint",
                    str(checkpoint),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert checkpoint.is_dir()
        resumed_dir = tmp_path / "resumed"
        assert (
            main(
                [
                    "analyze",
                    str(cli_archive),
                    str(resumed_dir),
                    "--resume",
                    str(checkpoint),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (resumed_dir / "report.txt").read_bytes() == (
            out_dir / "report.txt"
        ).read_bytes()

    def test_resume_shard_mismatch_fails_cleanly(
        self, cli_archive, tmp_path, capsys
    ):
        checkpoint = tmp_path / "two-shards.ckpt"
        assert (
            main(
                [
                    "analyze",
                    str(cli_archive),
                    str(tmp_path / "out"),
                    "--shards",
                    "2",
                    "--checkpoint",
                    str(checkpoint),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "analyze",
                str(cli_archive),
                str(tmp_path / "out2"),
                "--resume",
                str(checkpoint),
                "--shards",
                "5",
            ]
        )
        assert code == 1
        assert "cannot resume" in capsys.readouterr().err

    def test_simulate_workers_identical_archive(self, tmp_path):
        """simulate --workers changes wall-clock, never bytes."""
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        base = [
            "simulate",
            None,
            "--scale",
            "0.01",
            "--mrt-export",
            "1998-04-07",
        ]
        for directory, workers in (
            (serial_dir, None),
            (parallel_dir, ["--workers", "2"]),
        ):
            argv = list(base)
            argv[1] = str(directory)
            if workers:
                argv.extend(workers)
            assert main(argv) == 0
        for name in ("registry.bin", "days.bin", "paths.bin"):
            assert (serial_dir / name).read_bytes() == (
                parallel_dir / name
            ).read_bytes(), f"{name} differs"
        mrt_name = "mrt/rib.1998-04-07.mrt"
        assert (serial_dir / mrt_name).read_bytes() == (
            parallel_dir / mrt_name
        ).read_bytes()

    def test_checkpoint_layout_collision_fails_cleanly(
        self, cli_archive, tmp_path, capsys
    ):
        checkpoint = tmp_path / "single.ckpt"
        assert (
            main(
                [
                    "analyze",
                    str(cli_archive),
                    str(tmp_path / "out"),
                    "--checkpoint",
                    str(checkpoint),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "analyze",
                str(cli_archive),
                str(tmp_path / "out2"),
                "--shards",
                "2",
                "--checkpoint",
                str(checkpoint),
            ]
        )
        assert code == 1
        assert "existing file" in capsys.readouterr().err

    def test_resume_explicit_shards_one_mismatch_fails(
        self, cli_archive, tmp_path, capsys
    ):
        checkpoint = tmp_path / "two.ckpt"
        assert (
            main(
                [
                    "analyze",
                    str(cli_archive),
                    str(tmp_path / "out"),
                    "--shards",
                    "2",
                    "--checkpoint",
                    str(checkpoint),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "analyze",
                str(cli_archive),
                str(tmp_path / "out2"),
                "--resume",
                str(checkpoint),
                "--shards",
                "1",
            ]
        )
        assert code == 1
        assert "cannot resume" in capsys.readouterr().err


class TestConvertCommand:
    """`repro convert` and the simulate `--archive-format` axis."""

    @pytest.fixture(scope="class")
    def small_archive(self, tmp_path_factory):
        from repro.scenario.world import ScenarioConfig, simulate_study
        from repro.util.dates import StudyCalendar

        calendar = StudyCalendar(
            datetime.date(1998, 4, 6), datetime.date(1998, 4, 19)
        )
        directory = tmp_path_factory.mktemp("convert-cli") / "archive"
        simulate_study(
            directory,
            ScenarioConfig(
                scale=0.01, calendar=calendar, paper_archive_gaps=False
            ),
        )
        return directory

    def test_convert_then_analyze_matches_v1(
        self, small_archive, tmp_path, capsys
    ):
        converted = tmp_path / "v2"
        assert main(["convert", str(small_archive), str(converted)]) == 0
        printed = capsys.readouterr().out
        assert "converted" in printed and "(v2)" in printed
        assert (converted / "days.bin").read_bytes()[:4] == b"CDS2"
        manifest = json.loads((converted / "manifest.json").read_text())
        assert manifest["format"] == "cds-2"

        out_v1 = tmp_path / "out-v1"
        out_v2 = tmp_path / "out-v2"
        assert main(["analyze", str(small_archive), str(out_v1)]) == 0
        assert main(["analyze", str(converted), str(out_v2)]) == 0
        assert (out_v1 / "report.txt").read_bytes() == (
            out_v2 / "report.txt"
        ).read_bytes()

    def test_convert_back_to_v1_is_byte_identical(
        self, small_archive, tmp_path, capsys
    ):
        converted = tmp_path / "v2"
        restored = tmp_path / "v1-again"
        assert main(["convert", str(small_archive), str(converted)]) == 0
        assert (
            main(
                [
                    "convert",
                    str(converted),
                    str(restored),
                    "--to",
                    "v1",
                ]
            )
            == 0
        )
        capsys.readouterr()
        for name in ("days.bin", "registry.bin", "paths.bin"):
            assert (restored / name).read_bytes() == (
                small_archive / name
            ).read_bytes(), f"{name} differs"

    def test_existing_destination_fails_cleanly(
        self, small_archive, tmp_path, capsys
    ):
        occupied = tmp_path / "occupied"
        occupied.mkdir()
        assert main(["convert", str(small_archive), str(occupied)]) == 1
        assert "repro convert:" in capsys.readouterr().err

    def test_missing_source_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["convert", str(tmp_path / "nowhere"), str(tmp_path / "out")]
        )
        assert code == 1
        assert "repro convert:" in capsys.readouterr().err

    def test_simulate_archive_format_v2(self, tmp_path, capsys):
        """The simulate flag writes a v2 day store end to end."""
        from repro.scenario.world import ScenarioConfig, simulate_study
        from repro.util.dates import StudyCalendar

        calendar = StudyCalendar(
            datetime.date(1998, 4, 6), datetime.date(1998, 4, 12)
        )
        directory = tmp_path / "v2-sim"
        simulate_study(
            directory,
            ScenarioConfig(
                scale=0.01,
                calendar=calendar,
                paper_archive_gaps=False,
                archive_format="v2",
            ),
        )
        assert (directory / "days.bin").read_bytes()[:4] == b"CDS2"
        out_dir = tmp_path / "analysis"
        assert main(["analyze", str(directory), str(out_dir)]) == 0
        assert "MOAS study summary" in capsys.readouterr().out

    def test_simulate_cli_flag_parses(self, tmp_path):
        """--archive-format reaches ScenarioConfig via the parser."""
        from repro.api.cli import main as cli_main

        parser_error = None
        try:
            # A bad value must be rejected by argparse itself.
            cli_main(
                [
                    "simulate",
                    str(tmp_path / "x"),
                    "--archive-format",
                    "v9",
                ]
            )
        except SystemExit as exit_error:
            parser_error = exit_error.code
        assert parser_error == 2
