"""Renderer-registry error paths: every failure is a typed ValueError."""

import pytest

from repro.api.renderers import available_renderings, render
from repro.netbase.prefix import Prefix


class TestDispatchErrors:
    def test_unknown_figure_lists_available(self):
        with pytest.raises(ValueError, match="unknown figure 'figure99'"):
            render(object(), "figure99", "csv")
        with pytest.raises(ValueError, match="figure1"):
            render(object(), "nope", "csv")

    def test_known_figure_unknown_format_lists_formats(self):
        with pytest.raises(
            ValueError, match="figure1.*no 'pdf' renderer"
        ):
            render(object(), "figure1", "pdf")
        with pytest.raises(ValueError, match="csv"):
            render(object(), "episodes", "yaml")

    def test_registry_contains_rpki_figures(self):
        available = available_renderings()
        assert available["rpki"] == ("ascii", "csv", "json")
        assert available["longevity"] == ("ascii", "csv", "json")


class TestMalformedResults:
    def test_plain_dict_raises_value_error_not_attribute_error(self):
        with pytest.raises(ValueError, match="cannot render 'figure1'"):
            render({"daily_series": []}, "figure1", "csv")

    def test_evaluation_result_handed_to_study_figure(self):
        from repro.analysis.evaluation import evaluate_verdicts

        result = evaluate_verdicts({})
        with pytest.raises(
            ValueError, match="cannot render 'figure3'.*EvaluationResult"
        ):
            render(result, "figure3", "csv")

    def test_study_results_handed_to_evaluation_figure(self, tmp_path):
        from repro.api.service import MoasService

        results = MoasService().results()
        with pytest.raises(
            ValueError, match="cannot render 'evaluation'"
        ):
            render(results, "evaluation", "csv")

    def test_none_results(self):
        with pytest.raises(ValueError, match="NoneType"):
            render(None, "summary", "json")

    def test_renderer_bug_chain_preserved(self):
        # The original error stays attached for debugging.
        try:
            render({}, "rpki", "csv")
        except ValueError as error:
            assert isinstance(
                error.__cause__, (AttributeError, KeyError, TypeError)
            )
        else:  # pragma: no cover
            pytest.fail("malformed results did not raise")


class TestVerdictRpkiDefaults:
    def test_verdict_defaults_have_no_rpki_state(self):
        from repro.core.verdict import Verdict

        verdict = Verdict(
            prefix=Prefix.parse("10.0.0.0/8"),
            kind="organic",
            tags=frozenset(),
            suspicion=0.5,
            days_observed=1,
            origins=frozenset({1, 2}),
        )
        assert verdict.rpki_state is None
