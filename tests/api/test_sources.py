"""Source-adapter equivalence and open_source dispatch."""

import datetime

import pytest

from repro.api import (
    ArchiveSource,
    DetectionSource,
    MemorySource,
    MoasService,
    MrtFilesSource,
    NetworkSource,
    open_source,
    source_kinds,
)
from repro.bgp import ASGraph, Network
from repro.core.detector import detect_snapshot
from repro.netbase import Prefix
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar


def run_study(source) -> object:
    service = MoasService()
    service.feed(source)
    return service.results()


class TestArchiveVsMrtEquivalence:
    """Archive and MRT adapters agree on the same simulated world."""

    CALENDAR = StudyCalendar(
        datetime.date(1998, 4, 1), datetime.date(1998, 4, 21)
    )

    @pytest.fixture(scope="class")
    def world(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("equiv") / "archive"
        config = ScenarioConfig(
            scale=0.02,
            seed=42,
            calendar=self.CALENDAR,
            paper_archive_gaps=False,
        )
        # Export EVERY observed day as a binary MRT dump so the two
        # adapters cover the identical world end to end.
        simulate_study(
            directory, config, mrt_export_days=set(self.CALENDAR)
        )
        return directory

    def test_identical_study_results(self, world):
        mrt_files = sorted((world / "mrt").glob("*.mrt"))
        assert len(mrt_files) == self.CALENDAR.num_days

        from_archive = run_study(ArchiveSource(world))
        from_mrt = run_study(MrtFilesSource(mrt_files))
        assert from_archive == from_mrt

    def test_open_source_auto_detects_both(self, world):
        assert isinstance(open_source(world), ArchiveSource)
        mrt_dir_source = open_source(world / "mrt")
        assert isinstance(mrt_dir_source, MrtFilesSource)
        assert len(mrt_dir_source.paths) == self.CALENDAR.num_days


class TestNetworkVsMemoryEquivalence:
    """A live simulation feed equals the same snapshots fed by hand."""

    PREFIX = Prefix.parse("192.0.2.0/24")
    DAYS = [datetime.date(2001, 4, day) for day in (6, 7, 8)]
    PEERS = [701, 1239, 9]

    def build_network(self) -> Network:
        graph = ASGraph()
        graph.add_peering(701, 1239)
        graph.add_customer(701, 100)
        graph.add_customer(1239, 200)
        graph.add_customer(100, 7)
        graph.add_customer(200, 8)
        graph.add_customer(100, 9)
        graph.add_customer(200, 9)
        network = Network(graph)
        network.originate(7, self.PREFIX)
        network.run_to_convergence()
        return network

    def mutate(self, network: Network, day: datetime.date) -> None:
        # Day 2: AS 8 falsely originates the prefix; day 3: it stops.
        if day == self.DAYS[1]:
            network.originate(8, self.PREFIX)
        elif day == self.DAYS[2]:
            network.withdraw(8, self.PREFIX)

    def test_identical_study_results(self):
        live = NetworkSource(
            self.build_network(),
            self.DAYS,
            self.PEERS,
            mutate=self.mutate,
        )
        from_network = run_study(live)

        replay = self.build_network()
        snapshots = []
        for day in self.DAYS:
            self.mutate(replay, day)
            replay.run_to_convergence()
            snapshots.append(replay.collector_snapshot(day, self.PEERS))
        from_snapshots = run_study(MemorySource(snapshots))
        from_detections = run_study(
            MemorySource([detect_snapshot(s) for s in snapshots])
        )

        assert from_network == from_snapshots == from_detections
        assert from_network.total_conflicts == 1
        assert from_network.episodes[self.PREFIX].days_observed == 1

    def test_open_source_adapts_network(self):
        source = open_source(
            self.build_network(), days=self.DAYS, peer_asns=self.PEERS
        )
        assert isinstance(source, NetworkSource)


class TestOpenSourceDispatch:
    def test_registered_kinds(self):
        assert source_kinds() == ("archive", "memory", "mrt", "network")

    def test_existing_source_passes_through(self):
        source = MemorySource([])
        assert open_source(source) is source

    def test_spec_string_dispatch(self, tmp_path):
        source = open_source(f"archive:{tmp_path}")
        assert isinstance(source, ArchiveSource)
        assert source.directory == tmp_path

    def test_unknown_spec_kind_raises(self):
        with pytest.raises(ValueError, match="unknown source kind"):
            open_source("bogus:whatever")

    def test_live_object_kinds_reject_specs(self):
        with pytest.raises(ValueError, match="network sources"):
            open_source("network:anything")
        with pytest.raises(ValueError, match="memory sources"):
            open_source("memory:anything")

    def test_mrt_file_and_path_list(self, tmp_path):
        dump = tmp_path / "rib.1998-04-07.mrt"
        dump.touch()
        assert isinstance(open_source(dump), MrtFilesSource)
        assert isinstance(open_source([dump]), MrtFilesSource)

    def test_missing_path_raises_clean_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no CDS archive"):
            open_source(tmp_path / "nowhere")

    def test_empty_directory_raises_instead_of_empty_study(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no \\*.mrt files"):
            open_source(tmp_path)

    def test_unmatched_mrt_spec_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no MRT files match"):
            open_source(f"mrt:{tmp_path}/*.mrt")

    def test_generator_feed_stays_streaming(self, api_detections):
        consumed = []

        def generate():
            for detection in api_detections[:4]:
                consumed.append(detection.day)
                yield detection

        source = open_source(generate())
        assert isinstance(source, MemorySource)
        # Only the type-sniffing peek has run; nothing is materialized.
        assert len(consumed) == 1
        stream = source.detections()
        assert next(stream).day == api_detections[0].day
        assert [d.day for d in stream] == [
            d.day for d in api_detections[1:4]
        ]

    def test_mrt_spec_honors_days_option(self, tmp_path):
        dump = tmp_path / "rib.mrt"
        dump.touch()
        days = [datetime.date(1998, 4, 7)]
        source = open_source(f"mrt:{dump}", days=days)
        assert isinstance(source, MrtFilesSource)
        assert source.days == days

    def test_detection_iterable_becomes_memory_source(self, api_detections):
        source = open_source(api_detections[:3])
        assert isinstance(source, MemorySource)
        assert [d.day for d in source.detections()] == [
            d.day for d in api_detections[:3]
        ]

    def test_unadaptable_object_raises(self):
        with pytest.raises(TypeError, match="cannot adapt"):
            open_source(42)

    def test_adapters_satisfy_protocol(self, tmp_path):
        assert isinstance(MemorySource([]), DetectionSource)
        assert isinstance(ArchiveSource(tmp_path), DetectionSource)
        assert isinstance(MrtFilesSource([]), DetectionSource)
