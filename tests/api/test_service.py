"""MoasService: incremental feeding, checkpointing, resume."""

import json

import pytest

from repro.analysis.pipeline import StudyPipeline
from repro.api import CHECKPOINT_VERSION, MoasService


@pytest.fixture(scope="module")
def straight_results(api_detections):
    service = MoasService()
    service.feed(api_detections)
    return service.results()


class TestFeeding:
    def test_feed_counts_days(self, api_detections):
        service = MoasService()
        assert service.days_fed == 0
        assert service.last_day is None
        fed = service.feed(api_detections)
        assert fed == len(api_detections)
        assert service.days_fed == len(api_detections)
        assert service.last_day == api_detections[-1].day

    def test_feed_matches_batch_pipeline(
        self, api_detections, straight_results
    ):
        batch = StudyPipeline().run(iter(api_detections))
        assert batch == straight_results

    def test_out_of_order_day_rejected(self, api_detections):
        service = MoasService()
        service.feed_day(api_detections[1])
        with pytest.raises(ValueError, match="increasing order"):
            service.feed_day(api_detections[0])

    def test_skip_seen_refeed_is_idempotent(
        self, api_detections, straight_results
    ):
        service = MoasService()
        service.feed(api_detections)
        assert service.feed(api_detections, skip_seen=True) == 0
        assert service.results() == straight_results

    def test_interim_results_do_not_disturb_stream(
        self, api_detections, straight_results
    ):
        service = MoasService()
        midpoint = len(api_detections) // 2
        service.feed(api_detections[:midpoint])
        interim = service.results()
        assert interim.total_days == midpoint
        service.feed(api_detections[midpoint:])
        assert service.results() == straight_results


class TestCheckpointResume:
    def test_mid_study_resume_equals_straight_run(
        self, api_detections, straight_results
    ):
        """The acceptance criterion: resume == uninterrupted run."""
        midpoint = len(api_detections) // 3
        first = MoasService()
        first.feed(api_detections[:midpoint])

        # Force a real JSON round trip, as a checkpoint file would.
        snapshot = json.loads(json.dumps(first.snapshot_state()))
        resumed = MoasService.resume(snapshot)
        assert resumed.days_fed == midpoint

        resumed.feed(api_detections[midpoint:])
        assert resumed.results() == straight_results

    def test_checkpoint_file_round_trip(
        self, tmp_path, api_detections, straight_results
    ):
        midpoint = len(api_detections) // 2
        first = MoasService()
        first.feed(api_detections[:midpoint])
        path = first.save_checkpoint(tmp_path / "ckpt" / "study.json")
        assert path.exists()

        resumed = MoasService.load_checkpoint(path)
        resumed.feed(api_detections[midpoint:])
        assert resumed.results() == straight_results

    def test_resume_skip_seen_over_full_source(
        self, api_detections, straight_results
    ):
        """Resuming over a re-streamed overlapping source works."""
        midpoint = len(api_detections) // 2
        first = MoasService()
        first.feed(api_detections[:midpoint])
        resumed = MoasService.resume(first.snapshot_state())
        fed = resumed.feed(api_detections, skip_seen=True)
        assert fed == len(api_detections) - midpoint
        assert resumed.results() == straight_results

    def test_checkpoint_preserves_pipeline_config(self, api_detections):
        pipeline = StudyPipeline(spike_window_days=10, spike_factor=2.5)
        service = MoasService(pipeline)
        service.feed(api_detections[:20])
        resumed = MoasService.resume(service.snapshot_state())
        assert resumed.pipeline == pipeline

    def test_unsupported_version_rejected(self):
        service = MoasService()
        snapshot = service.snapshot_state()
        assert snapshot["version"] == CHECKPOINT_VERSION
        snapshot["version"] = 999
        with pytest.raises(ValueError, match="unsupported checkpoint"):
            MoasService.resume(snapshot)

    def test_empty_session_round_trips(self, api_detections):
        resumed = MoasService.resume(MoasService().snapshot_state())
        assert resumed.days_fed == 0
        resumed.feed(api_detections[:5])
        assert resumed.results().total_days == 5


class TestRenderPassthrough:
    def test_service_render_matches_registry(
        self, api_detections, straight_results
    ):
        from repro.api import render

        service = MoasService()
        service.feed(api_detections)
        assert service.render("summary", "json") == render(
            straight_results, "summary", "json"
        )


class TestShardedService:
    def test_sharded_results_equal_serial(
        self, api_detections, straight_results
    ):
        service = MoasService(shards=4)
        service.feed(api_detections)
        assert service.results() == straight_results

    def test_worker_feed_equals_serial(self, api_archive, straight_results):
        import os

        workers = int(os.environ.get("REPRO_TEST_WORKERS", "2"))
        service = MoasService(workers=workers)
        service.feed(api_archive)
        assert service.results() == straight_results

    def test_sharded_checkpoint_is_a_directory(
        self, tmp_path, api_detections
    ):
        service = MoasService(shards=3)
        service.feed(api_detections[:10])
        path = service.save_checkpoint(tmp_path / "sharded.ckpt")
        assert path.is_dir()
        assert (path / "manifest.json").exists()
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["shard_count"] == 3
        for name in manifest["shard_files"]:
            assert (path / name).exists()

    def test_sharded_resume_mid_study_equals_straight_run(
        self, tmp_path, api_detections, straight_results
    ):
        """Acceptance: a sharded checkpoint resumed mid-study equals
        an uninterrupted run."""
        midpoint = len(api_detections) // 3
        first = MoasService(shards=4)
        first.feed(api_detections[:midpoint])
        path = first.save_checkpoint(tmp_path / "sharded-mid.ckpt")

        resumed = MoasService.load_checkpoint(path)
        assert resumed.shards == 4
        assert resumed.days_fed == midpoint
        resumed.feed(api_detections[midpoint:])
        assert resumed.results() == straight_results

    def test_legacy_version1_payload_still_resumes(self, api_detections):
        """Pre-shard checkpoints (version 1, single `state`) load."""
        service = MoasService()
        service.feed(api_detections[:8])
        snapshot = service.snapshot_state()
        legacy = {
            "version": 1,
            "pipeline": snapshot["pipeline"],
            "state": snapshot["shards"][0],
        }
        resumed = MoasService.resume(json.loads(json.dumps(legacy)))
        assert resumed.days_fed == 8
        resumed.feed(api_detections[8:])
        full = MoasService()
        full.feed(api_detections)
        assert resumed.results() == full.results()

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            MoasService(shards=0)

    def test_checkpoint_layout_collision_raises_cleanly(
        self, tmp_path, api_detections
    ):
        single = MoasService()
        single.feed(api_detections[:3])
        sharded = MoasService(shards=2)
        sharded.feed(api_detections[:3])
        file_path = single.save_checkpoint(tmp_path / "study.ckpt")
        dir_path = sharded.save_checkpoint(tmp_path / "sharded.ckpt")
        with pytest.raises(ValueError, match="existing file"):
            sharded.save_checkpoint(file_path)
        with pytest.raises(ValueError, match="existing directory"):
            single.save_checkpoint(dir_path)

    def test_resume_carries_requested_workers(
        self, tmp_path, api_detections
    ):
        service = MoasService(shards=2)
        service.feed(api_detections[:5])
        path = service.save_checkpoint(tmp_path / "w.ckpt")
        resumed = MoasService.load_checkpoint(path, workers=2)
        assert resumed.workers == 2
        assert MoasService.load_checkpoint(path).workers == 1

    def test_resaving_fewer_shards_removes_stale_files(
        self, tmp_path, api_detections
    ):
        wide = MoasService(shards=4)
        wide.feed(api_detections[:3])
        path = wide.save_checkpoint(tmp_path / "re.ckpt")
        wide_files = json.loads(
            (path / "manifest.json").read_text()
        )["shard_files"]
        assert len(wide_files) == 4
        assert all((path / name).exists() for name in wide_files)
        narrow = MoasService(shards=2)
        narrow.feed(api_detections[:3])
        narrow.save_checkpoint(path)
        assert not any((path / name).exists() for name in wide_files)
        assert MoasService.load_checkpoint(path).shards == 2

    def test_skip_seen_tolerates_intra_stream_duplicates(
        self, api_detections
    ):
        # A stream containing the same day twice (e.g. two dumps of
        # one day in an MRT list) feeds once and skips the duplicate.
        service = MoasService()
        stream = [
            api_detections[0],
            api_detections[1],
            api_detections[1],
            api_detections[2],
        ]
        assert service.feed(stream, skip_seen=True) == 3
        assert service.days_fed == 3


class TestCheckpointAtomicity:
    """A crash mid-save must never corrupt an existing checkpoint."""

    def _service(self, api_detections, *, shards=1):
        service = MoasService(shards=shards)
        for detection in api_detections[:5]:
            service.feed_day(detection)
        return service

    def test_failed_single_file_save_preserves_previous(
        self, api_detections, tmp_path, monkeypatch
    ):
        import os

        service = self._service(api_detections)
        path = tmp_path / "study.ckpt"
        service.save_checkpoint(path)
        before = path.read_bytes()

        for detection in api_detections[5:8]:
            service.feed_day(detection)
        monkeypatch.setattr(
            os, "replace", lambda src, dst: (_ for _ in ()).throw(
                OSError("simulated crash")
            )
        )
        with pytest.raises(OSError, match="simulated crash"):
            service.save_checkpoint(path)
        # The old checkpoint is byte-identical and still loads.
        assert path.read_bytes() == before
        restored = MoasService.load_checkpoint(path)
        assert restored.days_fed == 5
        # No stray temp files pollute the directory.
        assert [entry.name for entry in tmp_path.iterdir()] == ["study.ckpt"]

    def test_truncated_checkpoint_is_never_observed(
        self, api_detections, tmp_path, monkeypatch
    ):
        """Even a crash mid-*write* leaves no partial file behind."""
        import os

        service = self._service(api_detections)
        path = tmp_path / "study.ckpt"
        monkeypatch.setattr(
            os, "fsync", lambda fd: (_ for _ in ()).throw(
                OSError("power loss")
            )
        )
        with pytest.raises(OSError, match="power loss"):
            service.save_checkpoint(path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_failed_sharded_save_preserves_previous_shards(
        self, api_detections, tmp_path, monkeypatch
    ):
        import os

        service = self._service(api_detections, shards=2)
        path = tmp_path / "study-ckpt"
        service.save_checkpoint(path)
        before = {
            entry.name: entry.read_bytes() for entry in path.iterdir()
        }

        for detection in api_detections[5:8]:
            service.feed_day(detection)
        real_replace = os.replace
        calls = {"count": 0}

        def crash_on_second(src, dst):
            calls["count"] += 1
            if calls["count"] >= 2:
                raise OSError("simulated crash")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", crash_on_second)
        with pytest.raises(OSError, match="simulated crash"):
            service.save_checkpoint(path)
        monkeypatch.undo()
        # The manifest is the commit point and was never rewritten, so
        # the previous generation's files are all still present, byte
        # identical, and the checkpoint loads as the 5-day session.
        after = {entry.name: entry.read_bytes() for entry in path.iterdir()}
        for name, content in before.items():
            assert after[name] == content, f"{name} changed"
        restored = MoasService.load_checkpoint(path)
        assert restored.days_fed == 5
        # A subsequent healthy save commits the 8-day state and prunes
        # every superseded shard file, including the crash leftovers.
        service.save_checkpoint(path)
        assert MoasService.load_checkpoint(path).days_fed == 8
        manifest = json.loads((path / "manifest.json").read_text())
        shard_files = {
            entry.name
            for entry in path.iterdir()
            if entry.name != "manifest.json"
        }
        assert shard_files == set(manifest["shard_files"])
