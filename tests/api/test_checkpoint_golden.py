"""Golden checkpoint-compatibility fixtures.

``tests/fixtures/`` commits one checkpoint file per payload version —
``checkpoint_v1.json`` (the legacy single-state layout) and
``checkpoint_v2/`` (the sharded directory layout) — built from a fixed
hand-crafted detection stream by ``make_checkpoint_fixtures.py``.
Loading each must keep producing byte-for-byte the same study results,
pinned here as a digest, so checkpoint compatibility can never silently
break: a load failure means old checkpoints stopped parsing, a digest
mismatch means they parse into different science.
"""

import hashlib
from pathlib import Path

import pytest

from repro.api.renderers import render
from repro.api.service import MoasService

FIXTURES = Path(__file__).parent.parent / "fixtures"

#: sha256 over the canonical renderings of the fixture study.  Only an
#: intentional, documented checkpoint/statistics format change may
#: update this constant (regenerate via make_checkpoint_fixtures.py).
GOLDEN_DIGEST = (
    "2fbe93545869ec6c0171c878fe4efce26128e087c2221373eb979193ea0d0267"
)


def results_digest(results) -> str:
    """A stable digest over every figure the fixture study renders."""
    blob = "\n".join(
        render(results, figure, fmt)
        for figure, fmt in (
            ("summary", "json"),
            ("episodes", "csv"),
            ("figure1", "csv"),
            ("figure3", "csv"),
            ("figure4", "csv"),
            ("figure5", "csv"),
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize(
    "fixture", ["checkpoint_v1.json", "checkpoint_v2"]
)
def test_fixture_checkpoints_load_to_pinned_results(fixture):
    service = MoasService.load_checkpoint(FIXTURES / fixture)
    assert service.days_fed == 5
    assert results_digest(service.results()) == GOLDEN_DIGEST


def test_fixture_layouts_differ_but_agree():
    legacy = MoasService.load_checkpoint(FIXTURES / "checkpoint_v1.json")
    sharded = MoasService.load_checkpoint(FIXTURES / "checkpoint_v2")
    assert legacy.shards == 1
    assert sharded.shards == 2
    assert legacy.results() == sharded.results()


def test_fixture_checkpoints_remain_feedable():
    """A loaded golden checkpoint is a live session, not a museum piece."""
    import datetime

    from repro.core.detector import DayDetection

    service = MoasService.load_checkpoint(FIXTURES / "checkpoint_v2")
    service.feed_day(
        DayDetection(
            day=datetime.date(1998, 1, 6),
            conflicts=(),
            prefixes_scanned=40,
            as_set_excluded=0,
        )
    )
    assert service.days_fed == 6
    assert results_digest(service.results()) != GOLDEN_DIGEST
