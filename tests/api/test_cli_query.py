"""``repro query`` — happy paths, typed errors, exit codes.

The query command's error contract (ISSUE 10 satellite): every typed
failure — malformed CIDR, absent prefix, empty index, missing index
file, corrupt index — prints one ``repro query: ...`` line to stderr
and exits with status **2** (argparse's own convention), so scripts
can tell "no such episode" from a crashed run (1) and from success
(0).
"""

from __future__ import annotations

import csv
import datetime
import io
import json

import pytest

from repro.analysis.index import INDEX_FILENAME, EpisodeIndex
from repro.api.cli import main
from repro.api.service import MoasService


@pytest.fixture(scope="module")
def indexed_archive(tmp_path_factory):
    """A small archive with its episode index built via the CLI."""
    directory = tmp_path_factory.mktemp("query-cli") / "archive"
    assert main(["simulate", str(directory), "--scale", "0.01"]) == 0
    out = tmp_path_factory.mktemp("query-cli-out")
    assert (
        main(
            ["analyze", str(directory), str(out / "a"), "--index"]
        )
        == 0
    )
    return directory


@pytest.fixture(scope="module")
def indexed_prefix(indexed_archive):
    """One prefix the index holds an episode for."""
    index = EpisodeIndex.load(indexed_archive / INDEX_FILENAME)
    return str(next(iter(index.prefixes())))


class TestQueryHappyPaths:
    def test_ascii_answer(self, indexed_archive, indexed_prefix, capsys):
        code = main(["query", str(indexed_archive), indexed_prefix])
        assert code == 0
        out = capsys.readouterr().out
        assert f"MOAS episode history: {indexed_prefix}" in out
        assert "first seen" in out
        assert "indexed episode(s) overlap the window" in out

    def test_json_answer_matches_index(
        self, indexed_archive, indexed_prefix, capsys
    ):
        code = main(
            [
                "query",
                str(indexed_archive),
                indexed_prefix,
                "--format",
                "json",
            ]
        )
        assert code == 0
        answer = json.loads(capsys.readouterr().out)
        assert answer["query"]["prefix"] == indexed_prefix
        assert answer["episode"]["prefix"] == indexed_prefix
        # The CLI answer equals the fold's own view of the episode.
        service = MoasService()
        service.feed(indexed_archive)
        from repro.analysis.export import episode_record
        from repro.netbase.prefix import Prefix

        assert answer["episode"] == episode_record(
            service.results(), Prefix.parse(indexed_prefix)
        )

    def test_csv_answer_is_one_row(
        self, indexed_archive, indexed_prefix, capsys
    ):
        code = main(
            [
                "query",
                str(indexed_archive),
                indexed_prefix,
                "--format",
                "csv",
            ]
        )
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert len(rows) == 1
        assert rows[0]["prefix"] == indexed_prefix

    def test_day_and_range_windows(
        self, indexed_archive, indexed_prefix, capsys
    ):
        code = main(
            [
                "query",
                str(indexed_archive),
                indexed_prefix,
                "--format",
                "json",
                "--day",
                "1998-01-01",
            ]
        )
        assert code == 0
        point = json.loads(capsys.readouterr().out)
        assert point["query"]["explicit_window"]
        assert point["query"]["window_start"] == "1998-01-01"
        code = main(
            [
                "query",
                str(indexed_archive),
                indexed_prefix,
                "--format",
                "json",
                "--range",
                "1998-01-01:1999-01-01",
            ]
        )
        assert code == 0
        ranged = json.loads(capsys.readouterr().out)
        assert ranged["query"]["window_end"] == "1999-01-01"

    def test_direct_index_file_path(
        self, indexed_archive, indexed_prefix, capsys
    ):
        """ARCHIVE may be the .idx file itself, not its directory."""
        code = main(
            [
                "query",
                str(indexed_archive / INDEX_FILENAME),
                indexed_prefix,
            ]
        )
        assert code == 0
        assert indexed_prefix in capsys.readouterr().out


class TestQueryTypedErrors:
    """Every failure: one stderr line, exit code 2."""

    def run(self, args, capsys) -> tuple[int, str]:
        code = main(["query", *args])
        captured = capsys.readouterr()
        assert captured.out == ""
        return code, captured.err

    def test_malformed_cidr(self, indexed_archive, capsys):
        code, err = self.run(
            [str(indexed_archive), "not-a-cidr"], capsys
        )
        assert code == 2
        assert err.startswith("repro query:")
        assert "not-a-cidr" in err

    def test_absent_prefix(self, indexed_archive, capsys):
        code, err = self.run(
            [str(indexed_archive), "203.0.113.0/24"], capsys
        )
        assert code == 2
        assert "no MOAS episode recorded for 203.0.113.0/24" in err

    def test_missing_index_names_the_fix(self, tmp_path, capsys):
        bare = tmp_path / "bare"
        bare.mkdir()
        code, err = self.run([str(bare), "10.0.0.0/8"], capsys)
        assert code == 2
        assert "no episode index at" in err
        assert "repro analyze --index" in err

    def test_empty_index(self, tmp_path, capsys):
        path = tmp_path / INDEX_FILENAME
        EpisodeIndex().save(path)
        code, err = self.run([str(tmp_path), "10.0.0.0/8"], capsys)
        assert code == 2
        assert "is empty" in err

    def test_corrupt_index(self, indexed_archive, tmp_path, capsys):
        raw = bytearray(
            (indexed_archive / INDEX_FILENAME).read_bytes()
        )
        raw[len(raw) // 2] ^= 0x10
        (tmp_path / INDEX_FILENAME).write_bytes(bytes(raw))
        code, err = self.run([str(tmp_path), "10.0.0.0/8"], capsys)
        assert code == 2
        assert "repro query:" in err

    def test_bad_day(self, indexed_archive, capsys):
        code, err = self.run(
            [str(indexed_archive), "10.0.0.0/8", "--day", "soon"],
            capsys,
        )
        assert code == 2
        assert "soon" in err

    def test_bad_range(self, indexed_archive, capsys):
        code, err = self.run(
            [
                str(indexed_archive),
                "10.0.0.0/8",
                "--range",
                "1998-01-01",
            ],
            capsys,
        )
        assert code == 2
        assert "A:B" in err

    def test_day_and_range_conflict(self, indexed_archive, capsys):
        """argparse itself rejects --day with --range, also at 2."""
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "query",
                    str(indexed_archive),
                    "10.0.0.0/8",
                    "--day",
                    "1998-01-01",
                    "--range",
                    "1998-01-01:1998-01-02",
                ]
            )
        assert excinfo.value.code == 2


class TestQueryHelp:
    def test_help_names_the_contract(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", "--help"])
        assert excinfo.value.code == 0
        help_text = capsys.readouterr().out
        assert "--day" in help_text
        assert "--range" in help_text
        assert "--format" in help_text
        # argparse reflows the description; compare unwrapped.
        unwrapped = " ".join(help_text.split())
        assert "'repro analyze --index'" in unwrapped
        assert "status 2" in unwrapped

    def test_analyze_help_documents_index_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--help"])
        assert "--index" in capsys.readouterr().out


class TestAnalyzeIndexFlag:
    def test_analyze_writes_default_index_path(
        self, indexed_archive, capsys
    ):
        """The module fixture already ran analyze --index; verify."""
        path = indexed_archive / INDEX_FILENAME
        assert path.is_file()
        index = EpisodeIndex.load(path)
        assert len(index) > 0
        assert index.last_day is not None

    def test_analyze_index_custom_path(
        self, indexed_archive, tmp_path, capsys
    ):
        custom = tmp_path / "custom.idx"
        code = main(
            [
                "analyze",
                str(indexed_archive),
                str(tmp_path / "out"),
                "--index",
                str(custom),
            ]
        )
        assert code == 0
        assert "episode index written to" in capsys.readouterr().out
        assert custom.is_file()
        # Same archive, same fold -> byte-identical index.
        assert custom.read_bytes() == (
            indexed_archive / INDEX_FILENAME
        ).read_bytes()

    def test_index_answers_equal_across_layouts(
        self, indexed_archive, tmp_path
    ):
        """--workers/--shards layouts write the identical index."""
        sharded = tmp_path / "sharded.idx"
        code = main(
            [
                "analyze",
                str(indexed_archive),
                str(tmp_path / "out"),
                "--shards",
                "3",
                "--index",
                str(sharded),
            ]
        )
        assert code == 0
        assert sharded.read_bytes() == (
            indexed_archive / INDEX_FILENAME
        ).read_bytes()

    def test_query_answers_survive_archive_conversion(
        self, indexed_archive, tmp_path, capsys
    ):
        """convert carries episodes.idx as a side file."""
        converted = tmp_path / "v2"
        assert (
            main(
                [
                    "convert",
                    str(indexed_archive),
                    str(converted),
                    "--to",
                    "v2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (converted / INDEX_FILENAME).is_file()
        index = EpisodeIndex.load(converted / INDEX_FILENAME)
        prefix = str(next(iter(index.prefixes())))
        assert main(["query", str(converted), prefix]) == 0
        assert prefix in capsys.readouterr().out
