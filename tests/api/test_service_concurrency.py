"""Snapshot isolation of MoasService under concurrent feeding.

The serve daemon folds days on one thread while request handlers read
on others.  The service's contract: every concurrent
``snapshot_state()`` / ``results()`` equals the state after some
*prefix* of the fed day stream — a day boundary — never a torn
mid-fold mixture.  These tests hammer that contract from real threads.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.service import MoasService


@pytest.fixture(scope="module")
def day_stream(api_detections):
    """A bounded slice of the shared archive's detections."""
    return api_detections[:60]


@pytest.fixture(scope="module")
def reference_states(day_stream):
    """``snapshot_state()`` after each day-count prefix of the stream.

    reference_states[k] is the canonical state after exactly k days —
    the full set of states a concurrent reader is allowed to observe.
    """
    service = MoasService()
    states = [service.snapshot_state()]
    for detection in day_stream:
        service.feed_day(detection)
        states.append(service.snapshot_state())
    return states


class TestSnapshotConsistency:
    def test_concurrent_snapshots_are_day_boundaries(
        self, day_stream, reference_states
    ):
        """Every snapshot taken mid-feed equals some stream prefix."""
        service = MoasService()
        observed: list[dict] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                observed.append(service.snapshot_state())

        threads = [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            for detection in day_stream:
                service.feed_day(detection)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        observed.append(service.snapshot_state())  # the final state

        total_days = [
            state["shards"][0]["total_days"] for state in observed
        ]
        assert total_days[-1] == len(day_stream)
        for state, days in zip(observed, total_days):
            assert state == reference_states[days], (
                f"snapshot at {days} days is not the day-{days} "
                f"prefix state"
            )

    def test_concurrent_results_match_prefix_results(
        self, day_stream
    ):
        """results() under concurrent feeding = results at some prefix."""
        reference = MoasService()
        prefix_results = [reference.results()]
        for detection in day_stream:
            reference.feed_day(detection)
            prefix_results.append(reference.results())

        service = MoasService()
        observed = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                observed.append(service.results())

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for detection in day_stream:
                service.feed_day(detection)
        finally:
            stop.set()
            thread.join()

        assert observed, "reader thread never completed a results()"
        for results in observed:
            assert results == prefix_results[results.total_days]

    def test_results_snapshot_detached_from_live_session(
        self, day_stream
    ):
        """A results() snapshot never mutates as feeding continues."""
        service = MoasService()
        service.feed_day(day_stream[0])
        snapshot = service.results()
        frozen_days = snapshot.total_days
        frozen_episodes = dict(snapshot.episodes)
        for detection in day_stream[1:10]:
            service.feed_day(detection)
        assert snapshot.total_days == frozen_days
        assert snapshot.episodes == frozen_episodes

    def test_concurrent_index_builds_are_day_boundaries(
        self, day_stream
    ):
        """episode_index() racing feed_day = index at some day prefix.

        The query index inherits the service's snapshot isolation: an
        index built while days fold concurrently must byte-equal the
        index of some *prefix* of the day stream, never a torn
        mid-fold mixture (ISSUE 10 satellite).
        """
        reference = MoasService()
        prefix_bytes = [reference.episode_index().to_bytes()]
        for detection in day_stream:
            reference.feed_day(detection)
            prefix_bytes.append(reference.episode_index().to_bytes())

        service = MoasService()
        observed: list[tuple[int, bytes]] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                index = service.episode_index()
                observed.append(
                    (index.days_indexed, index.to_bytes())
                )

        threads = [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        try:
            for detection in day_stream:
                service.feed_day(detection)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        final = service.episode_index()
        observed.append((final.days_indexed, final.to_bytes()))

        assert observed[-1][0] == len(day_stream)
        for days, raw in observed:
            assert raw == prefix_bytes[days], (
                f"index built at {days} days is not the day-{days} "
                f"prefix index"
            )

    def test_sharded_checkpoint_under_feed_is_consistent(
        self, day_stream, tmp_path
    ):
        """save_checkpoint during feeding loads as one day boundary."""
        service = MoasService(shards=3)
        errors: list[BaseException] = []
        loaded_days: list[int] = []
        stop = threading.Event()

        def checkpointer():
            index = 0
            while not stop.is_set():
                path = tmp_path / f"ckpt-{index}"
                index += 1
                try:
                    service.save_checkpoint(path)
                    resumed = MoasService.load_checkpoint(path)
                    loaded_days.append(resumed.days_fed)
                    # All shards agree on the day boundary.
                    days = {
                        state["shards"][0]["total_days"]
                        for state in [resumed.snapshot_state()]
                    }
                    assert len(days) == 1
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)
                    return

        thread = threading.Thread(target=checkpointer)
        thread.start()
        try:
            for detection in day_stream[:30]:
                service.feed_day(detection)
        finally:
            stop.set()
            thread.join()
        assert not errors, errors
        assert loaded_days
        assert all(0 <= days <= 30 for days in loaded_days)
        assert loaded_days == sorted(loaded_days)
