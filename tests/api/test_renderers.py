"""Renderer registry: legacy parity, JSON formats, error handling."""

import json

import pytest

from repro.analysis.export import episodes_csv, summary_json
from repro.analysis.figures import (
    figure1_ascii,
    figure1_csv,
    figure3_ascii,
    figure3_csv,
    figure5_ascii,
    figure5_csv,
    figure6_ascii,
    figure6_csv,
)
from repro.analysis.report import figure2_table, figure4_table, summary_report
from repro.api import available_renderings, register_renderer, render

LEGACY_PARITY = [
    ("figure1", "csv", figure1_csv),
    ("figure1", "ascii", figure1_ascii),
    ("figure2", "ascii", figure2_table),
    ("figure3", "csv", figure3_csv),
    ("figure3", "ascii", figure3_ascii),
    ("figure4", "ascii", figure4_table),
    ("figure5", "csv", figure5_csv),
    ("figure5", "ascii", figure5_ascii),
    ("figure6", "csv", figure6_csv),
    ("figure6", "ascii", figure6_ascii),
    ("episodes", "csv", episodes_csv),
    ("summary", "json", summary_json),
    ("summary", "ascii", summary_report),
]


@pytest.mark.parametrize(
    "figure,format,legacy",
    LEGACY_PARITY,
    ids=[f"{fig}-{fmt}" for fig, fmt, _ in LEGACY_PARITY],
)
def test_registry_matches_legacy_renderer(api_results, figure, format, legacy):
    """Every registered output is byte-identical to its legacy function."""
    assert render(api_results, figure, format) == legacy(api_results)


class TestJsonFormats:
    @pytest.mark.parametrize(
        "figure",
        ["figure1", "figure2", "figure3", "figure4", "figure5", "figure6"],
    )
    def test_every_figure_has_parseable_json(self, api_results, figure):
        payload = json.loads(render(api_results, figure, "json"))
        assert isinstance(payload, list)
        assert payload, f"{figure} json rendering is empty"

    def test_figure1_json_mirrors_daily_series(self, api_results):
        payload = json.loads(render(api_results, "figure1", "json"))
        assert len(payload) == api_results.total_days
        first_day, first_count = api_results.daily_series[0]
        assert payload[0] == {
            "date": first_day.isoformat(),
            "conflicts": first_count,
        }

    def test_figure2_csv_lists_every_year(self, api_results):
        lines = render(api_results, "figure2", "csv").strip().splitlines()
        assert lines[0] == "year,median_conflicts,increase_rate"
        assert len(lines) == 1 + len(api_results.yearly_medians)


class TestRegistry:
    def test_available_renderings_structure(self):
        available = available_renderings()
        for figure in (
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
        ):
            assert "ascii" in available[figure]
            assert "json" in available[figure]
        assert "csv" in available["episodes"]
        assert set(available["summary"]) == {"ascii", "json"}

    def test_unknown_figure_names_alternatives(self, api_results):
        with pytest.raises(ValueError, match="unknown figure"):
            render(api_results, "figure99", "csv")

    def test_unknown_format_names_alternatives(self, api_results):
        with pytest.raises(ValueError, match="no 'svg' renderer"):
            render(api_results, "figure1", "svg")

    def test_new_registration_is_one_call_away(self, api_results):
        from repro.api import renderers

        @register_renderer("test-table", "tsv")
        def _test_table(results) -> str:
            return f"days\t{results.total_days}\n"

        try:
            assert render(api_results, "test-table", "tsv") == (
                f"days\t{api_results.total_days}\n"
            )
            with pytest.raises(ValueError, match="already exists"):
                register_renderer("test-table", "tsv")(_test_table)
        finally:
            del renderers._RENDERERS[("test-table", "tsv")]
