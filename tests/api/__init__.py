"""Test package: tests/api."""
