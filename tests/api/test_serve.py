"""The serve daemon: concurrent queries, SSE alerts, ingestion.

Acceptance for the serving subsystem: with ingestion still folding
days, at least 8 concurrent clients query figures and every response
body is byte-identical to a fresh ``render()`` over an equivalent
batch analyze stopped at the day count the response's ``X-Repro-Days``
header names.
"""

from __future__ import annotations

import datetime
import json
import shutil
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api.renderers import render
from repro.api.serve import (
    AlertHub,
    BackgroundServer,
    Response,
    ServeConfig,
)
from repro.api.service import MoasService
from repro.api.sources import open_source
from repro.core.realtime import MoasAlert
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1997, 12, 17)
)
MRT_DAYS = {datetime.date(1997, 12, 16), datetime.date(1997, 12, 17)}


@pytest.fixture(scope="module")
def serve_archive(tmp_path_factory):
    """A 40-day archive (with two MRT day dumps) for the serve tests."""
    directory = tmp_path_factory.mktemp("serve") / "archive"
    simulate_study(
        directory,
        ScenarioConfig(
            scale=0.02, calendar=CALENDAR, paper_archive_gaps=False
        ),
        mrt_export_days=MRT_DAYS,
    )
    return directory


@pytest.fixture(scope="module")
def serve_detections(serve_archive):
    """The archive's daily detections, materialized once."""
    return list(open_source(serve_archive).detections())


def http_get(url: str, timeout: float = 30):
    """GET returning (status, headers dict, body bytes)."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def wait_for_ingest(url: str, timeout: float = 120) -> dict:
    """Poll ``/v1/status`` until the initial feed completes."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, body = http_get(url + "/v1/status")
        payload = json.loads(body)
        if status == 200 and payload["ingest"]["initial_complete"]:
            return payload
        time.sleep(0.1)
    raise AssertionError("initial ingestion did not complete in time")


class TestServeIntegration:
    FIGURES = (
        ("figure1", "csv"),
        ("figure2", "ascii"),
        ("summary", "json"),
        ("episodes", "json"),
    )

    def test_concurrent_clients_byte_identical_during_ingestion(
        self, serve_archive, serve_detections
    ):
        """8 clients query mid-ingestion; every body = batch render."""
        config = ServeConfig(
            archive=serve_archive, port=0, ingest_delay=0.03
        )
        observed: list[tuple[str, str, int, bytes]] = []
        lock = threading.Lock()
        stop = threading.Event()
        errors: list[str] = []

        def client(index: int, url: str) -> None:
            combos = self.FIGURES
            attempt = 0
            successes = 0
            while not stop.is_set() or successes < 3:
                figure, format = combos[(index + attempt) % len(combos)]
                status, headers, body = http_get(
                    f"{url}/v1/figure/{figure}?format={format}"
                )
                attempt += 1
                if status == 503:
                    continue  # nothing ingested yet
                if status != 200:
                    errors.append(f"{figure}/{format} -> {status}")
                    return
                successes += 1
                days = int(headers["X-Repro-Days"])
                with lock:
                    observed.append((figure, format, days, body))

        with BackgroundServer(config) as url:
            threads = [
                threading.Thread(target=client, args=(index, url))
                for index in range(8)
            ]
            for thread in threads:
                thread.start()
            wait_for_ingest(url)
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
            # Cover the final state explicitly: with ingestion done,
            # every figure must render at the full day count too.
            for figure, format in self.FIGURES:
                status, headers, body = http_get(
                    f"{url}/v1/figure/{figure}?format={format}"
                )
                assert status == 200
                observed.append(
                    (figure, format, int(headers["X-Repro-Days"]), body)
                )
        assert not errors, errors
        assert len(observed) >= 24  # every client got responses

        # Clients must have raced ingestion, not just the final state.
        day_counts = sorted({days for _, _, days, _ in observed})
        assert len(day_counts) > 1, (
            "every response saw the same day count; ingestion was "
            "not concurrent with the clients"
        )
        assert day_counts[-1] == len(serve_detections)

        # Reference: a batch analyze stopped at each observed day
        # count, rendered fresh — the serve bodies must match bytewise.
        needed = {days for _, _, days, _ in observed}
        reference: dict[int, dict] = {}
        service = MoasService()
        for fed, detection in enumerate(serve_detections, start=1):
            service.feed_day(detection)
            if fed in needed:
                results = service.results()
                reference[fed] = {
                    (figure, format): render(results, figure, format)
                    for figure, format in self.FIGURES
                }
        for figure, format, days, body in observed:
            expected = reference[days][(figure, format)].encode()
            assert body == expected, (
                f"{figure}/{format} at {days} days diverged from "
                f"batch analyze"
            )

    def test_status_health_and_version(self, serve_archive):
        from repro import __version__

        config = ServeConfig(archive=serve_archive, port=0)
        with BackgroundServer(config) as url:
            payload = wait_for_ingest(url)
            assert payload["service"] == "repro-moas"
            assert payload["version"] == __version__
            assert payload["days_fed"] == CALENDAR.num_days
            assert payload["last_day"] == CALENDAR.end.isoformat()
            assert payload["alerts"]["emitted"] > 0
            assert "figure1" in payload["figures"]
            assert "evaluation" not in payload["figures"]
            status, _, body = http_get(url + "/healthz")
            assert (status, body) == (200, b"ok\n")

    def test_episode_verdict_and_evaluation_endpoints(
        self, serve_archive
    ):
        config = ServeConfig(archive=serve_archive, port=0)
        with BackgroundServer(config) as url:
            wait_for_ingest(url)
            _, _, body = http_get(url + "/v1/figure/episodes?format=json")
            episodes = json.loads(body)
            assert episodes
            prefix = episodes[0]["prefix"]
            status, headers, body = http_get(
                f"{url}/v1/episodes/{prefix}"
            )
            assert status == 200
            assert json.loads(body) == episodes[0]
            assert int(headers["X-Repro-Days"]) == CALENDAR.num_days

            status, _, body = http_get(url + "/v1/verdicts")
            assert status == 200
            verdicts = json.loads(body)
            assert verdicts["count"] == len(verdicts["verdicts"])
            assert verdicts["count"] > 0
            suspicions = [
                row["suspicion"] for row in verdicts["verdicts"]
            ]
            status, _, body = http_get(
                url + "/v1/verdicts?min_suspicion=0.5"
            )
            filtered = json.loads(body)
            assert filtered["count"] == sum(
                1 for value in suspicions if value >= 0.5
            )

            status, _, body = http_get(url + "/v1/evaluation?format=json")
            assert status == 200
            scored = json.loads(body)
            assert "per_kind" in scored or scored  # a JSON document

    def test_history_endpoint_answers_from_the_index(
        self, serve_archive
    ):
        """/v1/history carries the full indexed answer for a prefix."""
        config = ServeConfig(archive=serve_archive, port=0)
        with BackgroundServer(config) as url:
            wait_for_ingest(url)
            _, _, body = http_get(url + "/v1/figure/episodes?format=json")
            episodes = json.loads(body)
            prefix = episodes[0]["prefix"]

            status, headers, body = http_get(
                f"{url}/v1/history/{prefix}"
            )
            assert status == 200
            answer = json.loads(body)
            # The episode slice is byte-identical to the episode route.
            assert answer["episode"] == episodes[0]
            assert answer["query"]["prefix"] == prefix
            assert not answer["query"]["explicit_window"]
            assert answer["query"]["days_indexed"] == int(
                headers["X-Repro-Days"]
            )
            assert answer["query"]["total_episodes"] == len(episodes)
            assert "verdict" in answer

            # Point query against the episode's own first day.
            day = answer["episode"]["first_day"]
            _, _, body = http_get(
                f"{url}/v1/history/{prefix}?day={day}"
            )
            point = json.loads(body)
            assert point["query"]["explicit_window"]
            assert point["query"]["active"]
            assert point["query"]["overlap_days"] == 1

            # Range query over the full study window covers everyone.
            _, _, body = http_get(
                f"{url}/v1/history/{prefix}?range="
                f"{CALENDAR.start.isoformat()}:"
                f"{CALENDAR.end.isoformat()}"
            )
            ranged = json.loads(body)
            assert ranged["query"]["concurrent_episodes"] == len(
                episodes
            )

    def test_history_racing_ingestion_is_day_boundary_consistent(
        self, serve_archive, serve_detections
    ):
        """History answers mid-ingestion = batch index at that day.

        Every ``/v1/history`` body must byte-equal the answer of an
        index built from a batch fold (plus verdict engine) stopped at
        the day count the response's ``X-Repro-Days`` header names —
        the index inherits serve's snapshot isolation (ISSUE 10
        satellite).
        """
        from repro.analysis.index import EpisodeIndex
        from repro.core.verdict import VerdictEngine
        from repro.scenario.archive import ArchiveReader

        # A prefix conflicted on day 1, so early day counts answer 200.
        first_conflicts = serve_detections[0].conflicts
        assert first_conflicts, "fixture archive has a quiet first day"
        prefix = first_conflicts[0].prefix

        config = ServeConfig(
            archive=serve_archive, port=0, ingest_delay=0.03
        )
        observed: list[tuple[int, bytes]] = []
        lock = threading.Lock()
        stop = threading.Event()

        def client(url: str) -> None:
            successes = 0
            while not stop.is_set() or successes < 3:
                status, headers, body = http_get(
                    f"{url}/v1/history/{prefix}"
                )
                if status != 200:
                    continue  # not conflicted / nothing folded yet
                successes += 1
                with lock:
                    observed.append(
                        (int(headers["X-Repro-Days"]), body)
                    )

        with BackgroundServer(config) as url:
            threads = [
                threading.Thread(target=client, args=(url,))
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            wait_for_ingest(url)
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
            status, headers, body = http_get(
                f"{url}/v1/history/{prefix}"
            )
            assert status == 200
            observed.append((int(headers["X-Repro-Days"]), body))

        day_counts = sorted({days for days, _ in observed})
        assert day_counts[-1] == len(serve_detections)

        reader = ArchiveReader(serve_archive)
        try:
            registry = reader.registry
        finally:
            reader.close()
        needed = {days for days, _ in observed}
        reference: dict[int, bytes] = {}
        service = MoasService()
        engine = VerdictEngine()
        for fed, detection in enumerate(serve_detections, start=1):
            service.feed_day(detection)
            engine.feed_day(detection)
            if fed in needed:
                index = EpisodeIndex.build(
                    service.results(),
                    verdicts=engine.finalize(registry=registry),
                )
                answer = index.query(prefix)
                reference[fed] = (
                    json.dumps(answer.to_dict(), indent=2) + "\n"
                ).encode()
        for days, body in observed:
            assert body == reference[days], (
                f"history answer at {days} days diverged from a "
                f"batch-built index"
            )

    def test_error_paths(self, serve_archive):
        config = ServeConfig(archive=serve_archive, port=0)
        with BackgroundServer(config) as url:
            wait_for_ingest(url)
            for path, expected in (
                ("/v1/figure/nope", 404),
                ("/v1/figure/summary?format=xml", 400),
                ("/v1/figure/evaluation", 400),
                ("/v1/episodes/banana", 400),
                ("/v1/episodes/203.0.113.0/24", 404),
                ("/v1/history/banana", 400),
                ("/v1/history/203.0.113.0/24", 404),
                ("/v1/history/10.0.0.0/8?day=soon", 400),
                ("/v1/history/10.0.0.0/8?range=1998-01-01", 400),
                (
                    "/v1/history/10.0.0.0/8"
                    "?day=1998-01-01&range=1998-01-01:1998-01-02",
                    400,
                ),
                ("/v1/verdicts?min_suspicion=lots", 400),
                ("/v1/evaluation?format=xml", 400),
                ("/nope", 404),
            ):
                status, _, body = http_get(url + path)
                assert status == expected, (path, status)
                assert "error" in json.loads(body)
            # Non-GET methods are rejected.
            request = urllib.request.Request(
                url + "/v1/status", data=b"{}", method="POST"
            )
            try:
                with urllib.request.urlopen(request, timeout=30):
                    raise AssertionError("POST was accepted")
            except urllib.error.HTTPError as error:
                assert error.code == 405

    def test_sse_stream_delivers_alerts(self, serve_archive):
        config = ServeConfig(
            archive=serve_archive, port=0, ingest_delay=0.03
        )
        with BackgroundServer(config) as url:
            host, port = url.replace("http://", "").split(":")
            connection = socket.create_connection(
                (host, int(port)), timeout=30
            )
            connection.sendall(
                b"GET /v1/alerts?replay=100 HTTP/1.1\r\n"
                b"Host: test\r\n\r\n"
            )
            wait_for_ingest(url)
            # Drain whatever the stream has pushed by now.
            connection.settimeout(2)
            chunks = []
            try:
                while True:
                    chunk = connection.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
            except socket.timeout:
                pass
            connection.close()
            text = b"".join(chunks).decode()
        assert "text/event-stream" in text
        events = [
            json.loads(line[len("data: "):])
            for line in text.splitlines()
            if line.startswith("data: ")
        ]
        assert events, "no alerts arrived on the SSE stream"
        for payload in events:
            # Every event is a valid alert document.
            alert = MoasAlert.from_dict(payload)
            assert str(alert.prefix) == payload["prefix"]

    def test_checkpoint_resume_skips_seen_days(
        self, serve_archive, tmp_path
    ):
        checkpoint = tmp_path / "serve.ckpt"
        config = ServeConfig(
            archive=serve_archive, port=0, checkpoint=checkpoint
        )
        with BackgroundServer(config) as url:
            first = wait_for_ingest(url)
            _, _, summary_first = http_get(
                url + "/v1/figure/summary?format=json"
            )
        assert checkpoint.exists()
        with BackgroundServer(config) as url:
            resumed = wait_for_ingest(url)
            assert resumed["days_fed"] == first["days_fed"]
            assert resumed["ingest"]["days_ingested"] == 0
            _, _, summary_resumed = http_get(
                url + "/v1/figure/summary?format=json"
            )
        assert summary_resumed == summary_first

    def test_watch_directory_folds_dropped_days(
        self, serve_archive, tmp_path
    ):
        """A watch-only daemon ingests MRT day dumps as they appear."""
        drop = tmp_path / "drop"
        drop.mkdir()
        config = ServeConfig(
            watch=drop, port=0, poll_interval=0.1
        )
        with BackgroundServer(config) as url:
            payload = json.loads(http_get(url + "/v1/status")[2])
            assert payload["days_fed"] == 0
            status, _, _ = http_get(
                url + "/v1/figure/summary?format=json"
            )
            assert status == 503  # nothing ingested yet
            for day in sorted(MRT_DAYS):
                name = f"rib.{day.isoformat()}.mrt"
                shutil.copy(
                    serve_archive / "mrt" / name, drop / name
                )
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                payload = json.loads(http_get(url + "/v1/status")[2])
                if payload["days_fed"] == len(MRT_DAYS):
                    break
                time.sleep(0.1)
            assert payload["days_fed"] == len(MRT_DAYS)
            assert payload["last_day"] == max(MRT_DAYS).isoformat()
            status, _, _ = http_get(
                url + "/v1/figure/summary?format=json"
            )
            assert status == 200


class TestServeConfig:
    def test_requires_a_day_source(self):
        with pytest.raises(ValueError, match="day source"):
            ServeConfig()

    def test_string_paths_are_normalized(self, tmp_path):
        config = ServeConfig(archive=str(tmp_path))
        assert config.archive == tmp_path


class TestAlertHub:
    def test_publish_reaches_every_subscriber(self):
        import asyncio

        async def scenario():
            hub = AlertHub()
            queues = [hub.subscribe() for _ in range(3)]
            hub.publish({"kind": "moas_started"})
            for queue in queues:
                event_id, payload = queue.get_nowait()
                assert event_id == 1
                assert payload == {"kind": "moas_started"}
            hub.unsubscribe(queues[0])
            hub.publish({"kind": "moas_ended"})
            assert queues[0].empty()
            assert hub.subscriber_count == 2
            assert hub.published == 2

        asyncio.run(scenario())

    def test_replay_returns_most_recent(self):
        import asyncio

        async def scenario():
            hub = AlertHub(history=4)
            for index in range(10):
                hub.publish({"index": index})
            recent = hub.replay(2)
            assert [payload["index"] for _, payload in recent] == [8, 9]
            # The ring buffer bounds history.
            assert len(hub.replay(100)) == 4
            assert hub.replay(0) == []

        asyncio.run(scenario())


class TestResponseEncoding:
    def test_wire_form_has_content_length(self):
        response = Response.json({"ok": True})
        wire = response.encode()
        head, _, body = wire.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert json.loads(body) == {"ok": True}

    def test_close_header_appended(self):
        wire = Response.text("x").encode(close=True)
        assert b"Connection: close" in wire
