"""Shared fixtures for the repro.api facade tests.

One small full-window archive is simulated per session; the service,
renderer and CLI tests all read from it (and from detections/results
materialized once) so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.api import MoasService, open_source
from repro.scenario.world import ScenarioConfig, simulate_study


@pytest.fixture(scope="session")
def api_archive(tmp_path_factory):
    """A small full-window CDS archive shared by the api tests."""
    directory = tmp_path_factory.mktemp("api") / "archive"
    simulate_study(directory, ScenarioConfig(scale=0.01))
    return directory


@pytest.fixture(scope="session")
def api_detections(api_archive):
    """Every daily detection of the shared archive, materialized."""
    return list(open_source(api_archive).detections())


@pytest.fixture(scope="session")
def api_results(api_detections):
    """The full study results over the shared archive."""
    service = MoasService()
    service.feed(api_detections)
    return service.results()
