"""Meta-tests: public API documentation coverage.

Every public module, class and function in the library must carry a
docstring — enforced here so documentation debt cannot accrete
silently.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports documented at their home
        yield name, member


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_public_members_documented(module):
    undocumented = []
    for name, member in _public_members(module):
        if not inspect.getdoc(member):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not inspect.getdoc(method):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public members: "
        f"{sorted(undocumented)}"
    )
