"""Tests for ASN display names."""

from repro.netbase.names import AS_NAMES, asn_name, format_as_path


class TestNames:
    def test_known_asn(self):
        assert asn_name(701) == "AS 701 (UUNET)"
        assert asn_name(3561) == "AS 3561 (Cable & Wireless)"

    def test_unknown_asn(self):
        assert asn_name(31337) == "AS 31337"

    def test_private_asn(self):
        assert asn_name(64512) == "AS 64512 (private)"

    def test_incident_actors_present(self):
        for asn in (7007, 8584, 15412):
            assert asn in AS_NAMES

    def test_format_path(self):
        rendered = format_as_path((701, 42))
        assert rendered == "AS 701 (UUNET) -> AS 42"
