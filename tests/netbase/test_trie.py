"""Tests for the prefix radix trie."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase.prefix import Prefix
from repro.netbase.trie import PrefixTrie

prefix_strategy = st.builds(
    lambda network, length: Prefix(network, length, strict=False),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
)


class TestMappingBehaviour:
    def test_set_get(self):
        trie = PrefixTrie()
        prefix = Prefix.parse("10.0.0.0/8")
        trie[prefix] = "ten"
        assert trie[prefix] == "ten"
        assert prefix in trie
        assert len(trie) == 1

    def test_get_default(self):
        trie = PrefixTrie()
        assert trie.get(Prefix.parse("10.0.0.0/8")) is None
        assert trie.get(Prefix.parse("10.0.0.0/8"), 5) == 5

    def test_missing_raises(self):
        trie = PrefixTrie()
        with pytest.raises(KeyError):
            trie[Prefix.parse("10.0.0.0/8")]

    def test_overwrite_does_not_grow(self):
        trie = PrefixTrie()
        prefix = Prefix.parse("10.0.0.0/8")
        trie[prefix] = 1
        trie[prefix] = 2
        assert len(trie) == 1
        assert trie[prefix] == 2

    def test_same_network_different_lengths_are_distinct(self):
        trie = PrefixTrie()
        trie[Prefix.parse("10.0.0.0/8")] = 8
        trie[Prefix.parse("10.0.0.0/16")] = 16
        assert len(trie) == 2
        assert trie[Prefix.parse("10.0.0.0/8")] == 8
        assert trie[Prefix.parse("10.0.0.0/16")] == 16

    def test_delete(self):
        trie = PrefixTrie()
        prefix = Prefix.parse("192.0.2.0/24")
        trie[prefix] = 1
        del trie[prefix]
        assert prefix not in trie
        assert len(trie) == 0

    def test_delete_missing_raises(self):
        trie = PrefixTrie()
        with pytest.raises(KeyError):
            del trie[Prefix.parse("10.0.0.0/8")]

    def test_delete_keeps_descendants(self):
        trie = PrefixTrie()
        parent = Prefix.parse("10.0.0.0/8")
        child = Prefix.parse("10.1.0.0/16")
        trie[parent] = "p"
        trie[child] = "c"
        del trie[parent]
        assert child in trie
        assert parent not in trie

    def test_root_entry(self):
        trie = PrefixTrie()
        default = Prefix.parse("0.0.0.0/0")
        trie[default] = "default"
        assert trie[default] == "default"
        match = trie.longest_match(Prefix.parse("1.2.3.0/24"))
        assert match == (default, "default")


class TestDeletePruning:
    def test_delete_prunes_empty_chain(self):
        # Deleting the only entry must remove the whole internal chain,
        # not just clear the value node.
        trie = PrefixTrie()
        trie[Prefix.parse("10.1.2.0/24")] = 1
        del trie[Prefix.parse("10.1.2.0/24")]
        assert trie._root.children == [None, None]

    def test_delete_prunes_up_to_shared_ancestor(self):
        # 10.0.0.0/15 covers both /16 halves; deleting one leaf must
        # prune its private chain but stop at the still-needed fork.
        trie = PrefixTrie()
        keep = Prefix.parse("10.0.0.0/16")
        drop = Prefix.parse("10.1.0.0/16")
        trie[keep] = "keep"
        trie[drop] = "drop"
        del trie[drop]
        assert keep in trie
        assert drop not in trie
        # The dropped branch is physically gone: walking towards it
        # dead-ends at the fork (depth 15), so _find returns None.
        assert trie._find(drop) is None

    def test_delete_stops_at_valued_ancestor(self):
        trie = PrefixTrie()
        parent = Prefix.parse("10.1.0.0/16")
        child = Prefix.parse("10.1.2.0/24")
        trie[parent] = "p"
        trie[child] = "c"
        del trie[child]
        assert parent in trie
        assert trie._find(child) is None
        assert trie._find(parent) is not None

    def test_delete_cleared_node_with_descendants_not_pruned(self):
        trie = PrefixTrie()
        parent = Prefix.parse("10.0.0.0/8")
        child = Prefix.parse("10.1.0.0/16")
        trie[parent] = "p"
        trie[child] = "c"
        del trie[parent]
        # The parent's node must survive as a pass-through for the
        # child, but no longer report presence.
        node = trie._find(parent)
        assert node is not None
        assert not node.present
        assert trie[child] == "c"

    def test_reinsert_after_prune(self):
        trie = PrefixTrie()
        prefix = Prefix.parse("192.0.2.0/24")
        trie[prefix] = 1
        del trie[prefix]
        trie[prefix] = 2
        assert trie[prefix] == 2
        assert len(trie) == 1


class TestLongestMatch:
    def test_root_entry_is_fallback_not_winner(self):
        # A present root (default route) must lose to any deeper match
        # but win when nothing else covers the query.
        trie = PrefixTrie()
        default = Prefix.parse("0.0.0.0/0")
        specific = Prefix.parse("10.1.0.0/16")
        trie[default] = "default"
        trie[specific] = "specific"
        assert trie.longest_match(Prefix.parse("10.1.2.0/24")) == (
            specific,
            "specific",
        )
        assert trie.longest_match(Prefix.parse("192.0.2.0/24")) == (
            default,
            "default",
        )

    def test_root_entry_matches_zero_length_query(self):
        trie = PrefixTrie()
        default = Prefix.parse("0.0.0.0/0")
        trie[default] = "default"
        assert trie.longest_match(default) == (default, "default")

    def test_root_entry_survives_mid_chain_miss(self):
        # The walk stops at a dead branch; the root entry must still be
        # reported as the best match found so far.
        trie = PrefixTrie()
        default = Prefix.parse("0.0.0.0/0")
        trie[default] = "default"
        trie[Prefix.parse("10.1.0.0/16")] = "deep"
        match = trie.longest_match(Prefix.parse("10.2.0.0/16"))
        assert match == (default, "default")

    def test_picks_most_specific(self):
        trie = PrefixTrie()
        trie[Prefix.parse("10.0.0.0/8")] = "short"
        trie[Prefix.parse("10.1.0.0/16")] = "long"
        match = trie.longest_match(Prefix.parse("10.1.2.0/24"))
        assert match == (Prefix.parse("10.1.0.0/16"), "long")

    def test_no_match(self):
        trie = PrefixTrie()
        trie[Prefix.parse("10.0.0.0/8")] = 1
        assert trie.longest_match(Prefix.parse("11.0.0.0/8")) is None

    def test_exact_match_included(self):
        trie = PrefixTrie()
        prefix = Prefix.parse("192.0.2.0/24")
        trie[prefix] = 1
        assert trie.longest_match(prefix) == (prefix, 1)

    def test_less_specific_query_does_not_match_more_specific_entry(self):
        trie = PrefixTrie()
        trie[Prefix.parse("10.1.0.0/16")] = 1
        assert trie.longest_match(Prefix.parse("10.0.0.0/8")) is None

    def test_address_lookup(self):
        trie = PrefixTrie()
        trie[Prefix.parse("192.0.2.0/24")] = "doc"
        match = trie.longest_match_address(0xC0000280)  # 192.0.2.128
        assert match == (Prefix.parse("192.0.2.0/24"), "doc")


class TestCoveringCovered:
    def _populated(self):
        trie = PrefixTrie()
        for text in (
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "10.2.0.0/16",
            "172.16.0.0/12",
        ):
            trie[Prefix.parse(text)] = text
        return trie

    def test_covering_chain(self):
        trie = self._populated()
        covering = [str(p) for p, _ in trie.covering(Prefix.parse("10.1.2.0/24"))]
        assert covering == ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]

    def test_covering_excludes_siblings(self):
        trie = self._populated()
        covering = [str(p) for p, _ in trie.covering(Prefix.parse("10.2.5.0/24"))]
        assert covering == ["10.0.0.0/8", "10.2.0.0/16"]

    def test_covered_subtree(self):
        trie = self._populated()
        covered = {str(p) for p, _ in trie.covered(Prefix.parse("10.1.0.0/16"))}
        assert covered == {"10.1.0.0/16", "10.1.2.0/24"}

    def test_covered_of_unstored_parent(self):
        trie = self._populated()
        covered = {str(p) for p, _ in trie.covered(Prefix.parse("10.0.0.0/7"))}
        assert covered == {
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "10.2.0.0/16",
        }

    def test_items_sorted(self):
        trie = self._populated()
        listed = [p for p, _ in trie.items()]
        assert listed == sorted(listed, key=lambda p: p.sort_key())


class TestTrieProperties:
    @given(st.dictionaries(prefix_strategy, st.integers(), max_size=40))
    def test_matches_dict_semantics(self, mapping):
        trie = PrefixTrie()
        for prefix, value in mapping.items():
            trie[prefix] = value
        assert len(trie) == len(mapping)
        for prefix, value in mapping.items():
            assert trie[prefix] == value
        assert dict(trie.items()) == mapping

    @given(st.dictionaries(prefix_strategy, st.integers(), max_size=30),
           prefix_strategy)
    def test_longest_match_is_correct(self, mapping, query):
        trie = PrefixTrie()
        for prefix, value in mapping.items():
            trie[prefix] = value
        expected = None
        for prefix, value in mapping.items():
            if prefix.contains(query):
                if expected is None or prefix.length > expected[0].length:
                    expected = (prefix, value)
        assert trie.longest_match(query) == expected

    @given(st.dictionaries(prefix_strategy, st.integers(), max_size=30),
           prefix_strategy)
    def test_covered_matches_bruteforce(self, mapping, query):
        trie = PrefixTrie()
        for prefix, value in mapping.items():
            trie[prefix] = value
        expected = {
            prefix for prefix in mapping if query.contains(prefix)
        }
        assert {p for p, _ in trie.covered(query)} == expected

    @given(st.lists(prefix_strategy, max_size=30, unique=True))
    def test_insert_then_delete_leaves_empty(self, entries):
        trie = PrefixTrie()
        for prefix in entries:
            trie[prefix] = 0
        for prefix in entries:
            del trie[prefix]
        assert len(trie) == 0
        assert list(trie.items()) == []
