"""Tests for ROAs and RFC 6811 origin validation."""

import datetime
import json

import pytest

from repro.netbase.prefix import Prefix
from repro.netbase.rpki import (
    Roa,
    RoaTable,
    ValidationState,
    worst_state,
)


def roa(text: str, origin: int, max_length: int | None = None, **windows):
    prefix = Prefix.parse(text)
    return Roa(
        prefix=prefix,
        max_length=max_length if max_length is not None else prefix.length,
        origin=origin,
        **windows,
    )


class TestRoa:
    def test_max_length_must_cover_prefix_length(self):
        with pytest.raises(ValueError, match="max_length"):
            Roa(Prefix.parse("10.0.0.0/16"), 8, 65000)
        with pytest.raises(ValueError, match="max_length"):
            Roa(Prefix.parse("10.0.0.0/16"), 33, 65000)

    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError, match="window"):
            roa(
                "10.0.0.0/16",
                7,
                valid_from=datetime.date(2000, 1, 2),
                valid_until=datetime.date(2000, 1, 1),
            )

    def test_negative_origin_rejected(self):
        with pytest.raises(ValueError, match="origin"):
            roa("10.0.0.0/16", -1)

    def test_active_on(self):
        bounded = roa(
            "10.0.0.0/16",
            7,
            valid_from=datetime.date(2000, 1, 1),
            valid_until=datetime.date(2000, 1, 31),
        )
        assert bounded.active_on(None)
        assert bounded.active_on(datetime.date(2000, 1, 1))
        assert bounded.active_on(datetime.date(2000, 1, 31))
        assert not bounded.active_on(datetime.date(1999, 12, 31))
        assert not bounded.active_on(datetime.date(2000, 2, 1))
        assert roa("10.0.0.0/16", 7).active_on(datetime.date(1970, 1, 1))

    def test_dict_round_trip(self):
        original = roa(
            "10.0.0.0/16", 7, 18, valid_from=datetime.date(2000, 1, 1)
        )
        assert Roa.from_dict(original.to_dict()) == original

    def test_from_dict_rejects_malformed_rows(self):
        with pytest.raises(ValueError, match="missing"):
            Roa.from_dict({"prefix": "10.0.0.0/16"})
        with pytest.raises(ValueError, match="JSON object"):
            Roa.from_dict(["10.0.0.0/16", 7])


class TestValidation:
    @pytest.fixture()
    def table(self) -> RoaTable:
        return RoaTable(
            [
                roa("10.0.0.0/16", 7, 18),
                roa("10.0.0.0/16", 8),  # second authorized origin
                roa("192.0.2.0/24", 9),
            ]
        )

    def test_exact_match_is_valid(self, table):
        state = table.validate(Prefix.parse("10.0.0.0/16"), 7)
        assert state is ValidationState.VALID

    def test_any_matching_roa_suffices(self, table):
        assert (
            table.validate(Prefix.parse("10.0.0.0/16"), 8)
            is ValidationState.VALID
        )

    def test_wrong_origin_is_invalid(self, table):
        assert (
            table.validate(Prefix.parse("10.0.0.0/16"), 666)
            is ValidationState.INVALID
        )

    def test_more_specific_within_max_length_is_valid(self, table):
        assert (
            table.validate(Prefix.parse("10.0.128.0/18"), 7)
            is ValidationState.VALID
        )

    def test_more_specific_beyond_max_length_is_invalid(self, table):
        # Covered by the /16 ROA but longer than max_length 18: the
        # classic de-aggregation signature, invalid even for the
        # authorized origin.
        assert (
            table.validate(Prefix.parse("10.0.0.0/24"), 7)
            is ValidationState.INVALID
        )

    def test_uncovered_prefix_is_not_found(self, table):
        assert (
            table.validate(Prefix.parse("172.16.0.0/12"), 7)
            is ValidationState.NOT_FOUND
        )

    def test_windows_gate_validation_by_day(self):
        table = RoaTable(
            [
                roa(
                    "10.0.0.0/16",
                    7,
                    valid_from=datetime.date(2000, 1, 10),
                    valid_until=datetime.date(2000, 1, 20),
                )
            ]
        )
        prefix = Prefix.parse("10.0.0.0/16")
        assert (
            table.validate(prefix, 7, day=datetime.date(2000, 1, 15))
            is ValidationState.VALID
        )
        # Outside the window the ROA does not exist for that day.
        assert (
            table.validate(prefix, 7, day=datetime.date(2000, 1, 5))
            is ValidationState.NOT_FOUND
        )
        # day=None ignores windows entirely.
        assert table.validate(prefix, 7) is ValidationState.VALID

    def test_covering_roas(self, table):
        covering = table.covering_roas(Prefix.parse("10.0.0.0/24"))
        assert {r.origin for r in covering} == {7, 8}

    def test_worst_state_precedence(self):
        assert (
            worst_state(ValidationState.VALID, ValidationState.INVALID)
            is ValidationState.INVALID
        )
        assert (
            worst_state(ValidationState.NOT_FOUND, ValidationState.VALID)
            is ValidationState.VALID
        )
        assert worst_state(None, ValidationState.NOT_FOUND) is (
            ValidationState.NOT_FOUND
        )


class TestRoaTable:
    def test_equality_and_canonical_order(self):
        first = RoaTable([roa("10.0.0.0/16", 7), roa("192.0.2.0/24", 9)])
        second = RoaTable([roa("192.0.2.0/24", 9), roa("10.0.0.0/16", 7)])
        assert first == second
        assert hash(first) == hash(second)
        assert first.key == second.key
        assert len(first) == 2

    def test_json_round_trip(self):
        table = RoaTable(
            [
                roa("10.0.0.0/16", 7, 18,
                    valid_from=datetime.date(2000, 1, 1)),
                roa("192.0.2.0/24", 9),
            ]
        )
        assert RoaTable.from_json(table.to_json()) == table

    def test_from_json_rejects_non_array(self):
        with pytest.raises(ValueError, match="JSON array"):
            RoaTable.from_json(json.dumps({"roas": []}))

    def test_load_from_file_and_directory(self, tmp_path):
        table = RoaTable([roa("10.0.0.0/16", 7)])
        path = tmp_path / "roas.json"
        path.write_text(table.to_json())
        assert RoaTable.load(path) == table
        assert RoaTable.load(tmp_path) == table
        assert RoaTable.load(table) is table

    def test_load_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--rpki"):
            RoaTable.load(tmp_path)  # directory without roas.json
        with pytest.raises(FileNotFoundError, match="no ROA file"):
            RoaTable.load(tmp_path / "missing.json")
