"""Test package: tests/netbase."""
