"""Tests for the IPv4 prefix value type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase.prefix import Prefix


def prefixes(min_length: int = 0, max_length: int = 32):
    """Hypothesis strategy producing canonical prefixes."""
    return st.builds(
        lambda network, length: Prefix(network, length, strict=False),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=min_length, max_value=max_length),
    )


class TestConstruction:
    def test_parse_basic(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.network == 0xC0000200
        assert prefix.length == 24

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.parse("10.1.2.3").length == 32

    def test_parse_default_route(self):
        prefix = Prefix.parse("0.0.0.0/0")
        assert prefix.length == 0
        assert prefix.num_addresses == 1 << 32

    def test_parse_rejects_bad_octet(self):
        with pytest.raises(ValueError):
            Prefix.parse("256.0.0.0/8")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Prefix.parse("hello/24")

    def test_parse_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/33")

    def test_strict_rejects_host_bits(self):
        with pytest.raises(ValueError, match="host bits"):
            Prefix(0x0A000001, 8)

    def test_non_strict_masks_host_bits(self):
        prefix = Prefix(0x0A000001, 8, strict=False)
        assert prefix.network == 0x0A000000

    def test_from_octets_truncated_form(self):
        # /17 needs 3 octets; the 4th is implicitly zero.
        prefix = Prefix.from_octets(bytes([10, 20, 128]), 17)
        assert str(prefix) == "10.20.128.0/17"

    def test_from_octets_too_short_raises(self):
        with pytest.raises(ValueError):
            Prefix.from_octets(bytes([10]), 24)

    def test_str_roundtrip(self):
        for text in ("0.0.0.0/0", "10.0.0.0/8", "192.0.2.128/25", "1.2.3.4/32"):
            assert str(Prefix.parse(text)) == text


class TestRelations:
    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.1.0.0/16"))

    def test_does_not_contain_less_specific(self):
        assert not Prefix.parse("10.1.0.0/16").contains(
            Prefix.parse("10.0.0.0/8")
        )

    def test_contains_self(self):
        prefix = Prefix.parse("172.16.0.0/12")
        assert prefix.contains(prefix)

    def test_disjoint_not_contained(self):
        assert not Prefix.parse("10.0.0.0/8").contains(
            Prefix.parse("11.0.0.0/8")
        )

    def test_contains_address(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.contains_address(0xC0000264)  # 192.0.2.100
        assert not prefix.contains_address(0xC0000364)  # 192.0.3.100

    def test_overlaps_symmetric(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.200.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)
        c = Prefix.parse("11.0.0.0/8")
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_common_supernet(self):
        a = Prefix.parse("192.0.2.0/25")
        b = Prefix.parse("192.0.2.128/25")
        assert str(Prefix.common_supernet(a, b)) == "192.0.2.0/24"

    def test_common_supernet_of_identical(self):
        a = Prefix.parse("10.0.0.0/8")
        assert Prefix.common_supernet(a, a) == a

    def test_common_supernet_disjoint_first_octet(self):
        a = Prefix.parse("0.0.0.0/8")
        b = Prefix.parse("128.0.0.0/8")
        assert Prefix.common_supernet(a, b).length == 0


class TestNavigation:
    def test_supernet_one_bit(self):
        assert str(Prefix.parse("10.1.0.0/16").supernet()) == "10.0.0.0/15"

    def test_supernet_to_target_length(self):
        assert (
            str(Prefix.parse("10.1.2.0/24").supernet(new_length=8))
            == "10.0.0.0/8"
        )

    def test_supernet_cannot_lengthen(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/8").supernet(new_length=9)

    def test_subnets_cover_parent_exactly(self):
        parent = Prefix.parse("192.0.2.0/24")
        low, high = parent.subnets()
        assert str(low) == "192.0.2.0/25"
        assert str(high) == "192.0.2.128/25"
        assert low.num_addresses + high.num_addresses == parent.num_addresses

    def test_cannot_subnet_host_route(self):
        with pytest.raises(ValueError):
            Prefix.parse("1.2.3.4/32").subnets()

    def test_bit_access(self):
        prefix = Prefix.parse("128.0.0.0/2")
        assert prefix.bit(0) == 1
        assert prefix.bit(1) == 0
        with pytest.raises(IndexError):
            prefix.bit(2)

    def test_to_octets_truncation(self):
        assert Prefix.parse("10.20.0.0/15").to_octets() == bytes([10, 20])
        assert Prefix.parse("0.0.0.0/0").to_octets() == b""


class TestOrderingAndHashing:
    def test_equality_and_hash(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix(0x0A000000, 8)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_by_length(self):
        assert Prefix.parse("10.0.0.0/8") != Prefix.parse("10.0.0.0/9")

    def test_sorting_by_network_then_length(self):
        unsorted = [
            Prefix.parse("10.0.0.0/9"),
            Prefix.parse("9.0.0.0/8"),
            Prefix.parse("10.0.0.0/8"),
        ]
        ordered = sorted(unsorted)
        assert [str(p) for p in ordered] == [
            "9.0.0.0/8",
            "10.0.0.0/8",
            "10.0.0.0/9",
        ]


class TestPrefixProperties:
    @given(prefixes())
    def test_parse_str_roundtrip(self, prefix):
        assert Prefix.parse(str(prefix)) == prefix

    @given(prefixes())
    def test_octet_roundtrip(self, prefix):
        assert Prefix.from_octets(prefix.to_octets(), prefix.length) == prefix

    @given(prefixes(max_length=31))
    def test_subnets_partition_parent(self, prefix):
        low, high = prefix.subnets()
        assert prefix.contains(low) and prefix.contains(high)
        assert not low.overlaps(high)

    @given(prefixes(min_length=1))
    def test_supernet_contains_child(self, prefix):
        assert prefix.supernet().contains(prefix)

    @given(prefixes(), prefixes())
    def test_common_supernet_contains_both(self, a, b):
        common = Prefix.common_supernet(a, b)
        assert common.contains(a) and common.contains(b)

    @given(prefixes(), prefixes())
    def test_containment_implies_overlap(self, a, b):
        if a.contains(b):
            assert a.overlaps(b)

    @given(prefixes())
    def test_netmask_consistency(self, prefix):
        assert prefix.network & prefix.netmask == prefix.network
        assert bin(prefix.netmask).count("1") == prefix.length
