"""Tests for route aggregation mechanics (paper Section VI-D/E)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase.aggregation import (
    aggregate,
    common_leading_sequence,
    find_aggregable_pairs,
    uncovered_specifics,
)
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix


def path(*ases: int) -> ASPath:
    return ASPath.from_sequence(ases)


class TestCommonLeadingSequence:
    def test_identical_paths(self):
        assert common_leading_sequence([path(1, 2, 3)] * 2) == (1, 2, 3)

    def test_diverging_tails(self):
        assert common_leading_sequence(
            [path(1, 2, 3), path(1, 2, 4)]
        ) == (1, 2)

    def test_no_common_prefix(self):
        assert common_leading_sequence([path(1), path(2)]) == ()

    def test_empty_input(self):
        assert common_leading_sequence([]) == ()


class TestAggregate:
    def test_same_origin_keeps_sequence(self):
        result = aggregate(
            100,
            [
                (Prefix.parse("10.0.0.0/25"), path(42)),
                (Prefix.parse("10.0.0.128/25"), path(42)),
            ],
        )
        assert result.prefix == Prefix.parse("10.0.0.0/24")
        assert not result.atomic
        assert not result.path.ends_in_as_set()
        assert result.path.origin() == 42

    def test_different_origins_form_as_set(self):
        # The mechanism behind the paper's ~12 AS_SET-tail prefixes.
        result = aggregate(
            100,
            [
                (Prefix.parse("10.0.0.0/25"), path(42)),
                (Prefix.parse("10.0.0.128/25"), path(43)),
            ],
        )
        assert result.atomic
        assert result.path.ends_in_as_set()
        assert result.path.origin() == frozenset({42, 43})
        assert result.path.first_as() == 100

    def test_shared_transit_preserved(self):
        result = aggregate(
            100,
            [
                (Prefix.parse("10.0.0.0/25"), path(7, 42)),
                (Prefix.parse("10.0.0.128/25"), path(7, 43)),
            ],
        )
        # The common leading AS 7 stays in sequence; 42/43 go to the set.
        assert result.path.as_list()[:2] == [100, 7]
        assert result.path.origin() == frozenset({42, 43})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate(100, [])

    def test_components_sorted(self):
        result = aggregate(
            100,
            [
                (Prefix.parse("10.0.0.128/25"), path(42)),
                (Prefix.parse("10.0.0.0/25"), path(42)),
            ],
        )
        assert result.components == (
            Prefix.parse("10.0.0.0/25"),
            Prefix.parse("10.0.0.128/25"),
        )


class TestFindAggregablePairs:
    def test_finds_sibling_pair(self):
        pairs = find_aggregable_pairs(
            [
                Prefix.parse("10.0.0.0/25"),
                Prefix.parse("10.0.0.128/25"),
                Prefix.parse("192.0.2.0/24"),
            ]
        )
        assert pairs == [
            (
                Prefix.parse("10.0.0.0/25"),
                Prefix.parse("10.0.0.128/25"),
                Prefix.parse("10.0.0.0/24"),
            )
        ]

    def test_no_false_pairs(self):
        # Adjacent but not siblings: 10.0.0.128/25 and 10.0.1.0/25
        # do not merge into a valid parent.
        pairs = find_aggregable_pairs(
            [Prefix.parse("10.0.0.128/25"), Prefix.parse("10.0.1.0/25")]
        )
        assert pairs == []

    def test_each_pair_reported_once(self):
        pairs = find_aggregable_pairs(
            [Prefix.parse("10.0.0.0/25"), Prefix.parse("10.0.0.128/25")]
        )
        assert len(pairs) == 1

    @given(
        st.sets(
            st.integers(min_value=0, max_value=255).map(
                lambda third: Prefix.parse(f"10.0.{third}.0/24")
            ),
            max_size=40,
        )
    )
    def test_pairs_are_genuine_siblings(self, prefixes):
        for low, high, parent in find_aggregable_pairs(prefixes):
            assert parent.subnets() == (low, high)
            assert low in prefixes and high in prefixes


class TestUncoveredSpecifics:
    def test_fully_covered(self):
        holes = uncovered_specifics(
            Prefix.parse("10.0.0.0/24"), [Prefix.parse("10.0.0.0/24")]
        )
        assert holes == []

    def test_totally_uncovered(self):
        holes = uncovered_specifics(Prefix.parse("10.0.0.0/24"), [])
        assert holes == [Prefix.parse("10.0.0.0/24")]

    def test_half_covered(self):
        holes = uncovered_specifics(
            Prefix.parse("10.0.0.0/24"), [Prefix.parse("10.0.0.0/25")]
        )
        assert holes == [Prefix.parse("10.0.0.128/25")]

    def test_holes_disjoint_from_reachable(self):
        reachable = [
            Prefix.parse("10.0.0.0/26"),
            Prefix.parse("10.0.0.128/26"),
        ]
        holes = uncovered_specifics(Prefix.parse("10.0.0.0/24"), reachable)
        for hole in holes:
            for covered in reachable:
                assert not hole.overlaps(covered)

    def test_routes_outside_aggregate_ignored(self):
        holes = uncovered_specifics(
            Prefix.parse("10.0.0.0/24"), [Prefix.parse("192.0.2.0/24")]
        )
        assert holes == [Prefix.parse("10.0.0.0/24")]

    def test_max_depth_limits_exploration(self):
        # A single /32 inside a /8 with depth 2: exploration stops and
        # partially-covered space is not reported as holes.
        holes = uncovered_specifics(
            Prefix.parse("10.0.0.0/8"),
            [Prefix.parse("10.0.0.1/32")],
            max_depth=2,
        )
        assert all(hole.length <= 10 for hole in holes)
