"""Tests for the prefix-space shard partitioner."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase.prefix import Prefix
from repro.netbase.sharding import SCHEMES, ShardSpec, shard_of

prefix_strategy = st.builds(
    lambda network, length: Prefix(network, length, strict=False),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
)


class TestShardOf:
    @given(prefix_strategy, st.integers(min_value=1, max_value=64))
    def test_hash_index_in_range(self, prefix, count):
        assert 0 <= shard_of(prefix, count, "hash") < count

    @given(prefix_strategy, st.integers(min_value=1, max_value=64))
    def test_range_index_in_range(self, prefix, count):
        assert 0 <= shard_of(prefix, count, "range") < count

    def test_range_scheme_is_monotone_in_network(self):
        low = Prefix.parse("1.0.0.0/8")
        high = Prefix.parse("250.0.0.0/8")
        assert shard_of(low, 4, "range") <= shard_of(high, 4, "range")
        assert shard_of(low, 4, "range") == 0
        assert shard_of(high, 4, "range") == 3

    def test_deterministic_across_calls(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert shard_of(prefix, 8) == shard_of(prefix, 8)

    def test_rejects_bad_scheme_and_count(self):
        prefix = Prefix.parse("10.0.0.0/8")
        with pytest.raises(ValueError, match="scheme"):
            shard_of(prefix, 4, "modulo")
        with pytest.raises(ValueError, match="count"):
            shard_of(prefix, 0)


class TestPartition:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @given(prefix=prefix_strategy)
    def test_every_prefix_in_exactly_one_shard(self, scheme, prefix):
        specs = ShardSpec.partition(5, scheme)
        owners = [spec for spec in specs if spec.contains(prefix)]
        assert len(owners) == 1

    def test_partition_shapes(self):
        specs = ShardSpec.partition(3)
        assert len(specs) == 3
        assert all(len(spec.indices) == 1 for spec in specs)
        assert not any(
            a.overlaps(b)
            for index, a in enumerate(specs)
            for b in specs[index + 1 :]
        )

    def test_union_of_partition_is_complete(self):
        specs = ShardSpec.partition(4)
        combined = specs[0]
        for spec in specs[1:]:
            assert not combined.is_complete
            combined = combined.union(spec)
        assert combined.is_complete

    @given(prefix=prefix_strategy)
    def test_complete_union_contains_everything(self, prefix):
        specs = ShardSpec.partition(6)
        combined = specs[0]
        for spec in specs[1:]:
            combined = combined.union(spec)
        assert combined.contains(prefix)
        assert prefix in combined  # __contains__ alias


class TestUnionValidation:
    def test_overlapping_union_rejected(self):
        spec = ShardSpec.single(0, 4)
        with pytest.raises(ValueError, match="overlapping"):
            spec.union(ShardSpec(frozenset((0, 1)), 4))

    def test_incompatible_count_rejected(self):
        with pytest.raises(ValueError, match="partitioning"):
            ShardSpec.single(0, 4).union(ShardSpec.single(1, 8))

    def test_incompatible_scheme_rejected(self):
        with pytest.raises(ValueError, match="partitioning"):
            ShardSpec.single(0, 4).union(ShardSpec.single(1, 4, "range"))


class TestValidationAndSerialization:
    def test_empty_indices_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardSpec(frozenset(), 4)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            ShardSpec(frozenset((4,)), 4)

    def test_round_trips_through_dict(self):
        spec = ShardSpec(frozenset((1, 3)), 8, "range")
        assert ShardSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_defaults_scheme(self):
        spec = ShardSpec.from_dict({"indices": [2], "count": 4})
        assert spec.scheme == "hash"

    def test_specs_are_hashable(self):
        assert len({ShardSpec.single(0, 2), ShardSpec.single(0, 2)}) == 1
