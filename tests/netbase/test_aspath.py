"""Tests for the AS path model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase.aspath import ASPath, Segment, SegmentType

asn_lists = st.lists(
    st.integers(min_value=1, max_value=65534), min_size=1, max_size=8
)


class TestSegment:
    def test_set_members_are_sorted_and_deduped(self):
        segment = Segment(SegmentType.AS_SET, (30, 10, 20, 10))
        assert segment.ases == (10, 20, 30)

    def test_sequence_preserves_order(self):
        segment = Segment(SegmentType.AS_SEQUENCE, (30, 10, 20))
        assert segment.ases == (30, 10, 20)

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            Segment(SegmentType.AS_SEQUENCE, ())

    def test_invalid_asn_rejected(self):
        with pytest.raises(ValueError):
            Segment(SegmentType.AS_SEQUENCE, (-1,))

    def test_str_forms(self):
        assert str(Segment(SegmentType.AS_SEQUENCE, (1, 2))) == "1 2"
        assert str(Segment(SegmentType.AS_SET, (2, 1))) == "{1,2}"


class TestConstruction:
    def test_from_sequence(self):
        path = ASPath.from_sequence([701, 7018, 42])
        assert path.sequence_tuple() == (701, 7018, 42)

    def test_from_empty_sequence(self):
        assert ASPath.from_sequence([]).is_empty()

    def test_parse_plain(self):
        path = ASPath.parse("701 7018 42")
        assert path.sequence_tuple() == (701, 7018, 42)

    def test_parse_with_set_tail(self):
        path = ASPath.parse("701 7018 {42,43}")
        assert path.ends_in_as_set()
        assert path.origin() == frozenset({42, 43})

    def test_parse_set_in_middle(self):
        path = ASPath.parse("701 {1,2} 42")
        kinds = [segment.kind for segment in path.segments]
        assert kinds == [
            SegmentType.AS_SEQUENCE,
            SegmentType.AS_SET,
            SegmentType.AS_SEQUENCE,
        ]
        assert path.origin() == 42

    def test_parse_str_roundtrip(self):
        for text in ("701 7018 42", "701 {42,43}", "1 1 1 2"):
            assert str(ASPath.parse(text)) == text

    def test_rejects_non_segment(self):
        with pytest.raises(TypeError):
            ASPath(["701"])  # type: ignore[list-item]


class TestOrigin:
    def test_origin_of_sequence(self):
        assert ASPath.from_sequence([1, 2, 3]).origin() == 3

    def test_origin_of_empty_path(self):
        assert ASPath().origin() is None

    def test_origin_as_raises_on_set_tail(self):
        path = ASPath.parse("701 {42,43}")
        with pytest.raises(ValueError):
            path.origin_as()

    def test_origin_as_on_sequence(self):
        assert ASPath.from_sequence([1, 2, 3]).origin_as() == 3

    def test_first_as(self):
        assert ASPath.from_sequence([9, 8, 7]).first_as() == 9
        assert ASPath().first_as() is None


class TestPathLength:
    def test_sequence_counts_each_hop(self):
        assert ASPath.from_sequence([1, 2, 3]).path_length() == 3

    def test_as_set_counts_as_one(self):
        # RFC 4271: an AS_SET contributes 1 to path length.
        path = ASPath.parse("1 2 {3,4,5}")
        assert path.path_length() == 3

    def test_prepending_increases_length(self):
        base = ASPath.from_sequence([2, 3])
        assert base.prepend(1, count=3).path_length() == 5


class TestPrepend:
    def test_prepend_merges_into_leading_sequence(self):
        path = ASPath.from_sequence([2, 3]).prepend(1)
        assert len(path.segments) == 1
        assert path.sequence_tuple() == (1, 2, 3)

    def test_prepend_onto_empty(self):
        assert ASPath().prepend(7).sequence_tuple() == (7,)

    def test_prepend_onto_set_head_adds_segment(self):
        path = ASPath((Segment(SegmentType.AS_SET, (5, 6)),)).prepend(1)
        assert len(path.segments) == 2
        assert path.first_as() == 1

    def test_prepend_count_validation(self):
        with pytest.raises(ValueError):
            ASPath().prepend(1, count=0)


class TestLoopDetection:
    def test_simple_path_no_loop(self):
        assert not ASPath.from_sequence([1, 2, 3]).has_loop()

    def test_prepending_is_not_a_loop(self):
        assert not ASPath.from_sequence([1, 1, 1, 2]).has_loop()

    def test_true_loop_detected(self):
        assert ASPath.from_sequence([1, 2, 1]).has_loop()

    def test_contains_as(self):
        path = ASPath.parse("1 2 {3,4}")
        assert path.contains_as(3)
        assert not path.contains_as(9)


class TestEqualityHashing:
    def test_equal_paths_hash_equal(self):
        a = ASPath.parse("1 2 3")
        b = ASPath.from_sequence([1, 2, 3])
        assert a == b and hash(a) == hash(b)

    def test_set_order_irrelevant(self):
        assert ASPath.parse("1 {2,3}") == ASPath.parse("1 {3,2}")

    def test_sequence_order_relevant(self):
        assert ASPath.parse("1 2") != ASPath.parse("2 1")


class TestPathProperties:
    @given(asn_lists)
    def test_from_sequence_roundtrip(self, ases):
        path = ASPath.from_sequence(ases)
        assert path.sequence_tuple() == tuple(ases)
        assert path.origin() == ases[-1]
        assert path.first_as() == ases[0]

    @given(asn_lists)
    def test_parse_str_roundtrip(self, ases):
        path = ASPath.from_sequence(ases)
        assert ASPath.parse(str(path)) == path

    @given(asn_lists, st.integers(min_value=1, max_value=65534))
    def test_prepend_preserves_origin(self, ases, new_as):
        path = ASPath.from_sequence(ases)
        assert path.prepend(new_as).origin() == path.origin()

    @given(asn_lists, st.sets(st.integers(min_value=1, max_value=65534),
                              min_size=1, max_size=5))
    def test_set_tail_reported(self, ases, members):
        path = ASPath.from_sequence(ases).with_set_tail(members)
        assert path.ends_in_as_set()
        assert path.origin() == frozenset(members)
