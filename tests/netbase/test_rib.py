"""Tests for RIB snapshot structures."""

import datetime

from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.netbase.rib import PeerId, RibSnapshot, Route

DAY = datetime.date(2001, 4, 6)
PEER_A = PeerId(asn=701, name="peerA")
PEER_B = PeerId(asn=1239, name="peerB")


def route(prefix: str, path: str, peer: PeerId) -> Route:
    return Route(Prefix.parse(prefix), ASPath.parse(path), peer)


class TestSnapshotBasics:
    def test_from_routes_groups_by_prefix(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 42", PEER_B),
                route("192.0.2.0/24", "701 99", PEER_A),
            ],
        )
        assert snapshot.num_prefixes() == 2
        assert snapshot.num_routes() == 3
        assert len(snapshot.routes_for(Prefix.parse("10.0.0.0/8"))) == 2

    def test_peers_tracked(self):
        snapshot = RibSnapshot.from_routes(
            DAY, [route("10.0.0.0/8", "701 42", PEER_A)]
        )
        assert snapshot.peers == frozenset({PEER_A})

    def test_routes_for_missing_prefix_is_empty(self):
        snapshot = RibSnapshot(DAY)
        assert snapshot.routes_for(Prefix.parse("10.0.0.0/8")) == []

    def test_iter_routes_counts(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("11.0.0.0/8", "701 42", PEER_A),
            ],
        )
        assert len(list(snapshot.iter_routes())) == 2

    def test_iter_prefix_routes_returns_copies(self):
        snapshot = RibSnapshot.from_routes(
            DAY, [route("10.0.0.0/8", "701 42", PEER_A)]
        )
        for _prefix, routes in snapshot.iter_prefix_routes():
            routes.clear()
        assert snapshot.num_routes() == 1


class TestOrigins:
    def test_single_origin(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 7018 42", PEER_B),
            ],
        )
        assert snapshot.origins_of(Prefix.parse("10.0.0.0/8")) == {42}

    def test_moas_origins(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 43", PEER_B),
            ],
        )
        assert snapshot.origins_of(Prefix.parse("10.0.0.0/8")) == {42, 43}

    def test_as_set_tails_excluded_by_default(self):
        # Matches the paper: routes ending in AS sets are not analyzed.
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 {42,43}", PEER_A),
                route("10.0.0.0/8", "1239 44", PEER_B),
            ],
        )
        assert snapshot.origins_of(Prefix.parse("10.0.0.0/8")) == {44}

    def test_as_set_tails_opt_in(self):
        snapshot = RibSnapshot.from_routes(
            DAY, [route("10.0.0.0/8", "701 {42,43}", PEER_A)]
        )
        origins = snapshot.origins_of(
            Prefix.parse("10.0.0.0/8"), include_as_set_tails=True
        )
        assert origins == {42, 43}


class TestVantageRestriction:
    def test_restricted_to_peer(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 43", PEER_B),
            ],
        )
        view = snapshot.restricted_to_peer(PEER_A)
        assert view.num_routes() == 1
        assert view.peers == frozenset({PEER_A})
        # The single-peer view no longer sees the conflict.
        assert view.origins_of(Prefix.parse("10.0.0.0/8")) == {42}
