"""Tests for AS-number classification."""

import pytest

from repro.netbase.asn import (
    AS_TRANS,
    is_documentation_asn,
    is_private_asn,
    is_reserved_asn,
    validate_asn,
)


class TestValidate:
    def test_accepts_common_asns(self):
        for asn in (1, 701, 3561, 7007, 8584, 15412, 65000, (1 << 32) - 1):
            assert validate_asn(asn) == asn

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_asn(-1)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            validate_asn(1 << 32)

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            validate_asn(True)

    def test_rejects_non_int(self):
        with pytest.raises(ValueError):
            validate_asn("701")


class TestClassification:
    def test_private_range_boundaries(self):
        assert not is_private_asn(64511)
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert not is_private_asn(65535)

    def test_paper_fault_asns_are_public(self):
        # AS 8584 and AS 15412 from the paper's fault case studies.
        assert not is_private_asn(8584)
        assert not is_private_asn(15412)

    def test_documentation_range(self):
        assert is_documentation_asn(64496)
        assert is_documentation_asn(64511)
        assert not is_documentation_asn(64512)

    def test_reserved(self):
        assert is_reserved_asn(0)
        assert is_reserved_asn(65535)
        assert is_reserved_asn(AS_TRANS)
        assert not is_reserved_asn(701)
