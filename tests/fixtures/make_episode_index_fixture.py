"""Regenerate the committed episode-index golden fixture.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/make_episode_index_fixture.py

Writes ``episode_index/golden.idx`` from a small hand-crafted
detection stream (with an ROA table and the verdict engine's view),
then prints the file digest and per-query answer digests that
``tests/analysis/test_index_golden.py`` pins.

Only regenerate for an *intentional*, documented index format change —
bumping ``repro.analysis.index._VERSION`` — and keep old index files
loading (or failing with a clear :class:`ArchiveError`) when you do.
"""

import datetime
import hashlib
import json
from pathlib import Path

from repro.analysis.index import EpisodeIndex
from repro.analysis.pipeline import StudyPipeline
from repro.core.detector import DailyConflict, DayDetection
from repro.core.verdict import VerdictEngine
from repro.netbase.prefix import Prefix
from repro.netbase.rpki import Roa, RoaTable

FIXTURES = Path(__file__).parent

START = datetime.date(1998, 1, 1)

#: day index -> {prefix: origins}; one long-lived conflict, one
#: flapper, one one-day event — same shape as the checkpoint fixture.
_DAYS = {
    0: {"10.0.0.0/8": (7, 9)},
    1: {"10.0.0.0/8": (7, 9), "192.0.2.0/24": (20, 21)},
    2: {"10.0.0.0/8": (7, 9, 11)},
    3: {"10.0.0.0/8": (7, 9), "172.16.0.0/12": (30, 31)},
    4: {"10.0.0.0/8": (7, 9), "192.0.2.0/24": (20, 22)},
}

#: A tiny ROA table: 10/8 authorized for AS 7, 192.0.2/24 for AS 99
#: (so its observed origins are invalid), 172.16/12 left unknown.
_ROAS = (
    Roa(Prefix.parse("10.0.0.0/8"), 8, 7),
    Roa(Prefix.parse("192.0.2.0/24"), 24, 99),
)


def detections() -> list[DayDetection]:
    stream = []
    for index in sorted(_DAYS):
        conflicts = tuple(
            DailyConflict(
                prefix=Prefix.parse(text), origins=frozenset(origins)
            )
            for text, origins in sorted(_DAYS[index].items())
        )
        stream.append(
            DayDetection(
                day=START + datetime.timedelta(days=index),
                conflicts=conflicts,
                prefixes_scanned=40,
                as_set_excluded=1,
            )
        )
    return stream


def build() -> EpisodeIndex:
    table = RoaTable(_ROAS)
    state = StudyPipeline().start(roa_table=table)
    engine = VerdictEngine(roa_table=table)
    for detection in detections():
        state.feed_day(detection)
        engine.feed_day(detection)
    return EpisodeIndex.build(
        state.results(), verdicts=engine.finalize()
    )


def answer_digest(index: EpisodeIndex, prefix_text: str, **kw) -> str:
    answer = index.query(Prefix.parse(prefix_text), **kw)
    blob = json.dumps(answer.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def main() -> None:
    index = build()
    directory = FIXTURES / "episode_index"
    directory.mkdir(exist_ok=True)
    path = index.save(directory / "golden.idx")
    raw = path.read_bytes()
    print(f"wrote {path} ({len(raw)} bytes)")
    print("file sha256:", hashlib.sha256(raw).hexdigest())
    print("q(10.0.0.0/8):", answer_digest(index, "10.0.0.0/8"))
    print(
        "q(192.0.2.0/24 @1998-01-02):",
        answer_digest(
            index, "192.0.2.0/24", day=datetime.date(1998, 1, 2)
        ),
    )
    print(
        "q(172.16.0.0/12 1998-01-01:1998-01-03):",
        answer_digest(
            index,
            "172.16.0.0/12",
            window=(
                datetime.date(1998, 1, 1),
                datetime.date(1998, 1, 3),
            ),
        ),
    )


if __name__ == "__main__":
    main()
