"""Regenerate the committed checkpoint golden fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/make_checkpoint_fixtures.py

Writes ``checkpoint_v1.json`` (a version-1, single-state payload) and
``checkpoint_v2/`` (a version-2 sharded checkpoint directory) from a
small hand-crafted detection stream, then prints the results digest
that ``tests/api/test_checkpoint_golden.py`` pins.

Only regenerate these fixtures for an *intentional*, documented
checkpoint format change — and when you do, keep the old fixtures
loading too (that is the compatibility promise the golden test
enforces).
"""

import datetime
import json
from pathlib import Path

from repro.api.service import MoasService
from repro.core.detector import DailyConflict, DayDetection
from repro.netbase.prefix import Prefix

FIXTURES = Path(__file__).parent

START = datetime.date(1998, 1, 1)

#: day index -> {prefix: origins}; a tiny study with one long-lived
#: conflict, one flapper, and one one-day event.
_DAYS = {
    0: {"10.0.0.0/8": (7, 9)},
    1: {"10.0.0.0/8": (7, 9), "192.0.2.0/24": (20, 21)},
    2: {"10.0.0.0/8": (7, 9, 11)},
    3: {"10.0.0.0/8": (7, 9), "172.16.0.0/12": (30, 31)},
    4: {"10.0.0.0/8": (7, 9), "192.0.2.0/24": (20, 22)},
}


def detections() -> list[DayDetection]:
    stream = []
    for index in sorted(_DAYS):
        conflicts = tuple(
            DailyConflict(
                prefix=Prefix.parse(text), origins=frozenset(origins)
            )
            for text, origins in sorted(_DAYS[index].items())
        )
        stream.append(
            DayDetection(
                day=START + datetime.timedelta(days=index),
                conflicts=conflicts,
                prefixes_scanned=40,
                as_set_excluded=1,
            )
        )
    return stream


def main() -> None:
    stream = detections()

    single = MoasService()
    single.feed(stream)
    snapshot = single.snapshot_state()
    v1 = {
        "version": 1,
        "pipeline": snapshot["pipeline"],
        "state": snapshot["shards"][0],
    }
    (FIXTURES / "checkpoint_v1.json").write_text(
        json.dumps(v1, indent=2) + "\n"
    )

    sharded = MoasService(shards=2)
    sharded.feed(stream)
    sharded.save_checkpoint(FIXTURES / "checkpoint_v2")

    from test_checkpoint_golden import results_digest  # noqa: E402

    print("digest:", results_digest(single.results()))


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(FIXTURES.parent / "api"))
    main()
