"""Tests for scenario-world ROA issuance (the RPKI shadow)."""

import datetime
import random

import pytest

from repro.netbase.prefix import Prefix
from repro.netbase.rpki import RoaTable, ValidationState
from repro.scenario.archive import (
    ArchiveReader,
    FLAG_AS_SET_TAIL,
    FLAG_EXCHANGE_POINT,
    RegistryEntry,
    convert_archive,
)
from repro.scenario.incidents import IncidentKind, IncidentLabel, IncidentScript
from repro.scenario.rpki import RpkiConfig, issue_roas
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

START = datetime.date(2000, 1, 1)


def date_of(index: int) -> datetime.date:
    return START + datetime.timedelta(days=index)


def entry(text: str, owner: int, created_day: int = 0, flags: int = 0):
    return RegistryEntry(Prefix.parse(text), owner, created_day, flags)


def label(kind, text, owner_or_perp, origins, start=10, end=20):
    return IncidentLabel(
        kind=kind,
        prefix=Prefix.parse(text),
        start_index=start,
        end_index=end,
        perpetrator=owner_or_perp,
        origins=tuple(origins),
    )


ASNS = list(range(100, 140))


def issue(registry, labels=(), config=None, seed=7, events=()):
    return issue_roas(
        registry,
        labels,
        config=config or RpkiConfig(),
        asns=ASNS,
        rng=random.Random(seed),
        date_of_index=date_of,
        organic_events=events,
    )


class TestConfig:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="coverage"):
            RpkiConfig(coverage=1.5)
        with pytest.raises(ValueError, match="stale_fraction"):
            RpkiConfig(stale_fraction=-0.1)
        with pytest.raises(ValueError, match="max_length_slack"):
            RpkiConfig(max_length_slack=-1)

    def test_to_dict(self):
        payload = RpkiConfig().to_dict()
        assert payload["coverage"] == 0.9
        assert payload["max_length_slack"] == 1


class TestOrganicCoverage:
    def test_full_coverage_authorizes_every_owner(self):
        registry = [entry("10.0.0.0/16", 101, 3), entry("11.0.0.0/16", 102)]
        table = RoaTable(
            issue(registry, config=RpkiConfig(coverage=1.0,
                                              stale_fraction=0.0,
                                              misissue_fraction=0.0))
        )
        for row in registry:
            assert (
                table.validate(row.prefix, row.owner)
                is ValidationState.VALID
            )
        # Day-stamped: the ROA starts the day the prefix registered.
        assert (
            table.validate(
                Prefix.parse("10.0.0.0/16"), 101, day=date_of(0)
            )
            is ValidationState.NOT_FOUND
        )
        assert (
            table.validate(
                Prefix.parse("10.0.0.0/16"), 101, day=date_of(3)
            )
            is ValidationState.VALID
        )

    def test_zero_coverage_issues_nothing_organic(self):
        registry = [entry("10.0.0.0/16", 101)]
        assert issue(registry, config=RpkiConfig(coverage=0.0)) == []

    def test_flagged_registrations_are_skipped(self):
        registry = [
            entry("10.0.0.0/14", 101, flags=FLAG_AS_SET_TAIL),
            entry("198.32.0.0/24", 101, flags=FLAG_EXCHANGE_POINT),
        ]
        assert issue(registry, config=RpkiConfig(coverage=1.0)) == []

    def test_stale_roa_never_names_the_current_owner(self):
        registry = [entry("10.0.0.0/16", 101)]
        config = RpkiConfig(
            coverage=1.0, stale_fraction=1.0, misissue_fraction=0.0
        )
        table = RoaTable(issue(registry, config=config))
        assert len(table) == 1
        assert (
            table.validate(Prefix.parse("10.0.0.0/16"), 101)
            is ValidationState.INVALID
        )

    def test_misissue_adds_a_wrong_origin_beside_the_correct_one(self):
        registry = [entry("10.0.0.0/16", 101)]
        config = RpkiConfig(
            coverage=1.0, stale_fraction=0.0, misissue_fraction=1.0
        )
        table = RoaTable(issue(registry, config=config))
        assert len(table) == 2
        prefix = Prefix.parse("10.0.0.0/16")
        assert table.validate(prefix, 101) is ValidationState.VALID
        wrong = next(roa.origin for roa in table if roa.origin != 101)
        # The misissued authorization would bless a hijack by that AS.
        assert table.validate(prefix, wrong) is ValidationState.VALID

    def test_valid_cause_events_authorize_secondary_origins(self):
        registry = [entry("10.0.0.0/16", 101)]
        config = RpkiConfig(
            coverage=1.0, stale_fraction=0.0, misissue_fraction=0.0
        )
        events = [
            {"prefix": "10.0.0.0/16", "origins": [101, 105],
             "cause": "static_multihoming", "valid": True,
             "start_index": 5},
            # Invalid causes never earn an authorization.
            {"prefix": "10.0.0.0/16", "origins": [101, 199],
             "cause": "misconfig", "valid": False, "start_index": 9},
        ]
        table = RoaTable(issue(registry, config=config, events=events))
        prefix = Prefix.parse("10.0.0.0/16")
        assert table.validate(prefix, 105) is ValidationState.VALID
        assert table.validate(prefix, 199) is ValidationState.INVALID
        # The secondary authorization starts with the arrangement.
        assert (
            table.validate(prefix, 105, day=date_of(2))
            is ValidationState.INVALID
        )


class TestIncidentShadows:
    def test_hijack_victim_gets_correct_roa(self):
        registry = [entry("10.0.0.0/16", 101, 2)]
        labels = [
            label(
                IncidentKind.EXACT_HIJACK, "10.0.0.0/16", 666, (101, 666)
            )
        ]
        table = RoaTable(
            issue(registry, labels, config=RpkiConfig(coverage=0.0))
        )
        prefix = Prefix.parse("10.0.0.0/16")
        assert table.validate(prefix, 101) is ValidationState.VALID
        assert table.validate(prefix, 666) is ValidationState.INVALID

    def test_anycast_gets_multi_origin_roa_set(self):
        registry = [entry("10.0.0.0/16", 101)]
        origins = (101, 110, 111, 112)
        labels = [
            label(IncidentKind.ANYCAST, "10.0.0.0/16", None, origins)
        ]
        table = RoaTable(
            issue(registry, labels, config=RpkiConfig(coverage=0.0))
        )
        prefix = Prefix.parse("10.0.0.0/16")
        for origin in origins:
            assert table.validate(prefix, origin) is ValidationState.VALID
        assert table.validate(prefix, 999) is ValidationState.INVALID

    def test_subprefix_fragment_covered_but_never_authorized(self):
        registry = [
            entry("10.0.0.0/16", 101),
            entry("10.0.0.0/18", 666, 10),  # the perpetrator's fragment
        ]
        labels = [
            label(
                IncidentKind.SUBPREFIX_HIJACK, "10.0.0.0/18", 666, (666,)
            )
        ]
        table = RoaTable(
            issue(registry, labels, config=RpkiConfig(coverage=0.0))
        )
        fragment = Prefix.parse("10.0.0.0/18")
        # Covered by the victim's ROA, longer than its max_length, and
        # originated by the wrong AS: invalid twice over.
        assert table.validate(fragment, 666) is ValidationState.INVALID
        assert (
            table.validate(Prefix.parse("10.0.0.0/16"), 101)
            is ValidationState.VALID
        )

    def test_aggregate_and_ixp_stay_uncovered(self):
        registry = [
            entry("10.0.0.0/14", 666, 10),
            entry("198.32.255.0/24", 120, 10, FLAG_EXCHANGE_POINT),
        ]
        labels = [
            label(
                IncidentKind.FAULTY_AGGREGATION, "10.0.0.0/14", 666, (666,)
            ),
            label(
                IncidentKind.IXP_CONFLICT,
                "198.32.255.0/24",
                None,
                (120, 121),
            ),
        ]
        table = RoaTable(
            issue(registry, labels, config=RpkiConfig(coverage=1.0))
        )
        assert (
            table.validate(Prefix.parse("10.0.0.0/14"), 666)
            is ValidationState.NOT_FOUND
        )
        assert (
            table.validate(Prefix.parse("198.32.255.0/24"), 120)
            is ValidationState.NOT_FOUND
        )


CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1997, 12, 17)
)  # 40 days


class TestWorldIntegration:
    @pytest.fixture(scope="class")
    def archive(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("rpki-world") / "archive"
        config = ScenarioConfig(
            scale=0.02,
            calendar=CALENDAR,
            paper_archive_gaps=False,
            incidents=IncidentScript.canned(CALENDAR.num_days),
            rpki=RpkiConfig(),
        )
        summary = simulate_study(directory, config)
        return directory, summary

    def test_roas_side_file_and_manifest(self, archive):
        directory, summary = archive
        reader = ArchiveReader(directory)
        assert reader.has_roas()
        rows = reader.roas()
        assert summary["roas_issued"] == len(rows)
        assert summary["rpki"] == RpkiConfig().to_dict()
        table = RoaTable.from_rows(rows)
        assert len(table) == len(rows)

    def test_issuance_is_deterministic(self, archive, tmp_path):
        directory, _summary = archive
        config = ScenarioConfig(
            scale=0.02,
            calendar=CALENDAR,
            paper_archive_gaps=False,
            incidents=IncidentScript.canned(CALENDAR.num_days),
            rpki=RpkiConfig(),
        )
        simulate_study(tmp_path / "again", config)
        assert (tmp_path / "again" / "roas.json").read_bytes() == (
            directory / "roas.json"
        ).read_bytes()

    def test_convert_carries_roas(self, archive, tmp_path):
        directory, _summary = archive
        convert_archive(directory, tmp_path / "converted", format="v2")
        converted = ArchiveReader(tmp_path / "converted")
        assert converted.has_roas()
        assert converted.roas() == ArchiveReader(directory).roas()

    def test_reader_without_side_files_returns_empty(self, tmp_path):
        config = ScenarioConfig(
            scale=0.02, calendar=CALENDAR, paper_archive_gaps=False
        )
        simulate_study(tmp_path / "plain", config)
        reader = ArchiveReader(tmp_path / "plain")
        assert not reader.has_roas()
        assert reader.roas() == []
        # Same contract for incident labels: an archive generated
        # without incidents has an empty answer key, not an error.
        assert not reader.has_incidents()
        assert reader.incident_labels() == []
