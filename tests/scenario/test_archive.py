"""Tests for the CDS archive format (day-store v1 and v2)."""

import datetime

import pytest

from repro.netbase.prefix import Prefix
from repro.scenario.archive import (
    ArchiveError,
    ArchiveReader,
    ArchiveWriter,
    DayRecord,
    FLAG_AS_SET_TAIL,
    MAGIC_V2,
    PeerRow,
    convert_archive,
    read_day_index,
)


def make_record(day_index: int, alive: int, rows=()) -> DayRecord:
    return DayRecord(
        day=datetime.date(1997, 11, 8) + datetime.timedelta(days=day_index),
        day_index=day_index,
        alive_count=alive,
        active_peers=(701, 1239),
        rows=tuple(rows),
    )


class TestWriterReader:
    def test_roundtrip(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        p0 = writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
        p1 = writer.register_prefix(Prefix.parse("192.0.2.0/24"), 43, 0)
        path_id = writer.intern_path((701, 42))
        writer.write_day(
            make_record(0, 2, [PeerRow(p0, 701, 42, path_id)])
        )
        writer.write_day(make_record(1, 2))
        writer.finalize({"calendar_start": "1997-11-08"})

        reader = ArchiveReader(tmp_path / "archive")
        assert reader.num_prefixes == 2
        assert reader.prefix(p1) == Prefix.parse("192.0.2.0/24")
        days = list(reader.iter_days())
        assert len(days) == 2
        assert days[0].day == datetime.date(1997, 11, 8)
        assert days[0].rows[0].origin == 42
        assert reader.path(days[0].rows[0].path_id) == (701, 42)
        assert days[1].rows == ()

    def test_path_interning_dedupes(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        first = writer.intern_path((1, 2, 3))
        second = writer.intern_path((1, 2, 3))
        third = writer.intern_path((1, 2))
        assert first == second
        assert third != first

    def test_duplicate_prefix_rejected(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
        with pytest.raises(ValueError, match="already registered"):
            writer.register_prefix(Prefix.parse("10.0.0.0/8"), 43, 1)

    def test_alive_count_validated(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
        with pytest.raises(ValueError, match="alive_count"):
            writer.write_day(make_record(0, alive=5))

    def test_write_after_finalize_rejected(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.finalize({"calendar_start": "1997-11-08"})
        with pytest.raises(RuntimeError, match="finalized"):
            writer.write_day(make_record(0, 0))

    def test_flags_roundtrip(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.register_prefix(
            Prefix.parse("10.0.0.0/8"), 42, 0, flags=FLAG_AS_SET_TAIL
        )
        writer.finalize({"calendar_start": "1997-11-08"})
        reader = ArchiveReader(tmp_path / "archive")
        assert reader.registry[0].as_set_tail
        assert not reader.registry[0].exchange_point

    def test_ground_truth_roundtrip(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.finalize({"calendar_start": "1997-11-08"})
        writer.write_ground_truth([{"prefix": "10.0.0.0/8", "valid": True}])
        reader = ArchiveReader(tmp_path / "archive")
        truth = reader.ground_truth()
        assert truth[0]["valid"] is True

    def test_manifest_extra_preserved(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.finalize({"calendar_start": "1997-11-08", "seed": 99})
        reader = ArchiveReader(tmp_path / "archive")
        assert reader.manifest["seed"] == 99
        assert reader.manifest["format"] == "cds-1"
        assert reader.format == "v1"


def build_archive(directory, format, days=None):
    """A small two-prefix archive with the given day records."""
    writer = ArchiveWriter(directory, format=format)
    p0 = writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
    p1 = writer.register_prefix(
        Prefix.parse("192.0.2.0/24"), 43, 0, flags=FLAG_AS_SET_TAIL
    )
    path_a = writer.intern_path((701, 42))
    path_b = writer.intern_path((1239, 3561, 44))
    if days is None:
        days = [
            make_record(
                0,
                2,
                [
                    PeerRow(p0, 701, 42, path_a),
                    PeerRow(p0, 1239, 44, path_b),
                    PeerRow(p1, 701, 43, path_a),
                ],
            ),
            # Same rows again: the repeated-run case v2 interns.
            make_record(
                1,
                2,
                [
                    PeerRow(p0, 701, 42, path_a),
                    PeerRow(p0, 1239, 44, path_b),
                    PeerRow(p1, 701, 43, path_a),
                ],
            ),
            make_record(3, 2),  # empty day, non-contiguous day_index
        ]
    for record in days:
        writer.write_day(record)
    writer.finalize({"calendar_start": "1997-11-08"})
    return days


class TestWriterReaderV2:
    def test_roundtrip_matches_v1(self, tmp_path):
        days_v1 = build_archive(tmp_path / "v1", "v1")
        days_v2 = build_archive(tmp_path / "v2", "v2")
        assert days_v1 == days_v2
        reader = ArchiveReader(tmp_path / "v2")
        assert reader.format == "v2"
        assert reader.manifest["format"] == "cds-2"
        assert list(reader.iter_days()) == days_v2
        assert list(reader.iter_days()) == list(
            ArchiveReader(tmp_path / "v1").iter_days()
        )

    def test_magic_bytes(self, tmp_path):
        build_archive(tmp_path / "v2", "v2")
        assert (tmp_path / "v2" / "days.bin").read_bytes()[:4] == MAGIC_V2

    def test_registry_and_paths_bytes_identical_across_formats(
        self, tmp_path
    ):
        build_archive(tmp_path / "v1", "v1")
        build_archive(tmp_path / "v2", "v2")
        for name in ("registry.bin", "paths.bin"):
            assert (tmp_path / "v1" / name).read_bytes() == (
                tmp_path / "v2" / name
            ).read_bytes()

    def test_range_iteration_is_sliced(self, tmp_path):
        days = build_archive(tmp_path / "v2", "v2")
        reader = ArchiveReader(tmp_path / "v2")
        assert list(reader.iter_days(1, 2)) == days[1:2]
        assert list(reader.iter_days(2)) == days[2:]
        assert list(reader.iter_days(len(days))) == []
        assert list(reader.iter_days(0, 99)) == days
        with pytest.raises(ValueError, match=">= 0"):
            list(reader.iter_days(-1))

    def test_day_index_brackets_every_frame(self, tmp_path):
        days = build_archive(tmp_path / "v2", "v2")
        offsets, frames_end = read_day_index(tmp_path / "v2")
        assert len(offsets) == len(days)
        assert offsets[0] == 4  # right after the magic
        assert sorted(offsets) == offsets
        assert frames_end > offsets[-1]
        reader = ArchiveReader(tmp_path / "v2")
        assert reader.day_offsets() == tuple(offsets)
        bounds = offsets + [frames_end]
        assert list(reader.iter_days_at(bounds[1], bounds[3])) == days[1:3]
        assert list(reader.iter_days_at(bounds[0], bounds[1])) == days[:1]

    def test_byte_iteration_rejected_on_v1(self, tmp_path):
        build_archive(tmp_path / "v1", "v1")
        reader = ArchiveReader(tmp_path / "v1")
        with pytest.raises(ArchiveError, match="v2"):
            reader.iter_days_at(0, 100)
        with pytest.raises(ArchiveError, match="v2"):
            reader.day_offsets()
        with pytest.raises(ArchiveError, match="v2"):
            read_day_index(tmp_path / "v1")

    def test_empty_archive_roundtrips(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "v2", format="v2")
        writer.finalize({"calendar_start": "1997-11-08"})
        reader = ArchiveReader(tmp_path / "v2")
        assert reader.format == "v2"
        assert list(reader.iter_days()) == []
        assert read_day_index(tmp_path / "v2")[0] == []

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            ArchiveWriter(tmp_path / "archive", format="v3")

    def test_overlong_path_rejected(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive", format="v2")
        with pytest.raises(ValueError, match="path"):
            writer.intern_path(tuple(range(300)))


class TestConvert:
    def test_v1_to_v2_preserves_records_and_manifest(self, tmp_path):
        days = build_archive(tmp_path / "v1", "v1")
        summary = convert_archive(tmp_path / "v1", tmp_path / "v2")
        assert summary["source_format"] == "v1"
        assert summary["target_format"] == "v2"
        reader = ArchiveReader(tmp_path / "v2")
        assert reader.format == "v2"
        assert list(reader.iter_days()) == days
        original = ArchiveReader(tmp_path / "v1").manifest
        converted = reader.manifest
        assert converted["format"] == "cds-2"
        assert converted["calendar_start"] == original["calendar_start"]
        assert converted["num_days"] == original["num_days"]
        assert converted["num_prefixes"] == original["num_prefixes"]

    def test_roundtrip_back_to_v1_is_byte_identical(self, tmp_path):
        build_archive(tmp_path / "v1", "v1")
        convert_archive(tmp_path / "v1", tmp_path / "v2", format="v2")
        convert_archive(tmp_path / "v2", tmp_path / "back", format="v1")
        for name in ("days.bin", "registry.bin", "paths.bin"):
            assert (tmp_path / "back" / name).read_bytes() == (
                tmp_path / "v1" / name
            ).read_bytes()

    def test_side_files_copied(self, tmp_path):
        build_archive(tmp_path / "v1", "v1")
        (tmp_path / "v1" / "ground_truth.json").write_text("[1, 2]")
        (tmp_path / "v1" / "incidents.json").write_text('[{"kind": "x"}]')
        convert_archive(tmp_path / "v1", tmp_path / "v2")
        assert (tmp_path / "v2" / "ground_truth.json").read_text() == "[1, 2]"
        assert (
            tmp_path / "v2" / "incidents.json"
        ).read_text() == '[{"kind": "x"}]'

    def test_mrt_dumps_copied(self, tmp_path):
        build_archive(tmp_path / "v1", "v1")
        mrt_dir = tmp_path / "v1" / "mrt"
        mrt_dir.mkdir()
        (mrt_dir / "rib.1997-11-08.mrt").write_bytes(b"\x00\x01")
        convert_archive(tmp_path / "v1", tmp_path / "v2")
        assert (
            tmp_path / "v2" / "mrt" / "rib.1997-11-08.mrt"
        ).read_bytes() == b"\x00\x01"

    def test_existing_destination_rejected(self, tmp_path):
        build_archive(tmp_path / "v1", "v1")
        (tmp_path / "occupied").mkdir()
        with pytest.raises(FileExistsError):
            convert_archive(tmp_path / "v1", tmp_path / "occupied")

    def test_unknown_target_format_rejected(self, tmp_path):
        build_archive(tmp_path / "v1", "v1")
        with pytest.raises(ValueError, match="format"):
            convert_archive(tmp_path / "v1", tmp_path / "out", format="v9")
