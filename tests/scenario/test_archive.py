"""Tests for the CDS archive format."""

import datetime

import pytest

from repro.netbase.prefix import Prefix
from repro.scenario.archive import (
    ArchiveReader,
    ArchiveWriter,
    DayRecord,
    FLAG_AS_SET_TAIL,
    PeerRow,
)


def make_record(day_index: int, alive: int, rows=()) -> DayRecord:
    return DayRecord(
        day=datetime.date(1997, 11, 8) + datetime.timedelta(days=day_index),
        day_index=day_index,
        alive_count=alive,
        active_peers=(701, 1239),
        rows=tuple(rows),
    )


class TestWriterReader:
    def test_roundtrip(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        p0 = writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
        p1 = writer.register_prefix(Prefix.parse("192.0.2.0/24"), 43, 0)
        path_id = writer.intern_path((701, 42))
        writer.write_day(
            make_record(0, 2, [PeerRow(p0, 701, 42, path_id)])
        )
        writer.write_day(make_record(1, 2))
        writer.finalize({"calendar_start": "1997-11-08"})

        reader = ArchiveReader(tmp_path / "archive")
        assert reader.num_prefixes == 2
        assert reader.prefix(p1) == Prefix.parse("192.0.2.0/24")
        days = list(reader.iter_days())
        assert len(days) == 2
        assert days[0].day == datetime.date(1997, 11, 8)
        assert days[0].rows[0].origin == 42
        assert reader.path(days[0].rows[0].path_id) == (701, 42)
        assert days[1].rows == ()

    def test_path_interning_dedupes(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        first = writer.intern_path((1, 2, 3))
        second = writer.intern_path((1, 2, 3))
        third = writer.intern_path((1, 2))
        assert first == second
        assert third != first

    def test_duplicate_prefix_rejected(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
        with pytest.raises(ValueError, match="already registered"):
            writer.register_prefix(Prefix.parse("10.0.0.0/8"), 43, 1)

    def test_alive_count_validated(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
        with pytest.raises(ValueError, match="alive_count"):
            writer.write_day(make_record(0, alive=5))

    def test_write_after_finalize_rejected(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.finalize({"calendar_start": "1997-11-08"})
        with pytest.raises(RuntimeError, match="finalized"):
            writer.write_day(make_record(0, 0))

    def test_flags_roundtrip(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.register_prefix(
            Prefix.parse("10.0.0.0/8"), 42, 0, flags=FLAG_AS_SET_TAIL
        )
        writer.finalize({"calendar_start": "1997-11-08"})
        reader = ArchiveReader(tmp_path / "archive")
        assert reader.registry[0].as_set_tail
        assert not reader.registry[0].exchange_point

    def test_ground_truth_roundtrip(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.finalize({"calendar_start": "1997-11-08"})
        writer.write_ground_truth([{"prefix": "10.0.0.0/8", "valid": True}])
        reader = ArchiveReader(tmp_path / "archive")
        truth = reader.ground_truth()
        assert truth[0]["valid"] is True

    def test_manifest_extra_preserved(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.finalize({"calendar_start": "1997-11-08", "seed": 99})
        reader = ArchiveReader(tmp_path / "archive")
        assert reader.manifest["seed"] == 99
        assert reader.manifest["format"] == "cds-1"
