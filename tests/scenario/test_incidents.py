"""Tests for the fault-injection scenario library."""

import datetime
import json

import pytest

from repro.netbase.asn import is_private_asn
from repro.netbase.prefix import Prefix
from repro.scenario.archive import ArchiveReader
from repro.scenario.incidents import (
    IncidentKind,
    IncidentLabel,
    IncidentScript,
    IncidentSpec,
)
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.topology.ixp import IXP_BLOCK
from repro.util.dates import StudyCalendar

CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1998, 2, 15)
)  # 100 days

ALL_KINDS = {kind.value for kind in IncidentKind}


@pytest.fixture(scope="module")
def canned_study(tmp_path_factory):
    """A fully-observed 100-day world with the canned incident suite."""
    directory = tmp_path_factory.mktemp("incidents") / "archive"
    config = ScenarioConfig(
        scale=0.02,
        calendar=CALENDAR,
        paper_archive_gaps=False,
        incidents=IncidentScript.canned(CALENDAR.num_days),
    )
    summary = simulate_study(directory, config)
    return directory, summary


class TestScript:
    def test_canned_covers_every_kind(self):
        script = IncidentScript.canned(100)
        kinds = {spec.kind for spec in script}
        assert kinds == set(IncidentKind)

    def test_add_is_immutable_and_composable(self):
        base = IncidentScript()
        grown = base.add(IncidentKind.EXACT_HIJACK, 10).add(
            "anycast", 20, origin_count=6
        )
        assert len(base) == 0
        assert len(grown) == 2
        assert grown.specs[1].kind is IncidentKind.ANYCAST
        assert grown.specs[1].origin_count == 6

    def test_json_round_trip(self):
        script = IncidentScript.canned(365)
        assert IncidentScript.from_json(script.to_json()) == script

    def test_from_spec_canned_and_file(self, tmp_path):
        assert len(IncidentScript.from_spec("canned", num_days=100)) == 8
        path = tmp_path / "script.json"
        path.write_text(IncidentScript.canned(100).to_json())
        assert IncidentScript.from_spec(
            str(path), num_days=100
        ) == IncidentScript.canned(100)
        with pytest.raises(FileNotFoundError):
            IncidentScript.from_spec("nope.json", num_days=100)

    def test_from_json_rejects_label_files_and_junk(self):
        # A ground-truth label file is a JSON *list*; scripts are
        # objects with an "incidents" array.
        with pytest.raises(ValueError, match="label file"):
            IncidentScript.from_json('[{"kind": "exact_hijack"}]')
        with pytest.raises(ValueError, match="incidents"):
            IncidentScript.from_json('{"other": []}')
        with pytest.raises(ValueError, match="array of incident-spec"):
            IncidentScript.from_json('{"incidents": [3]}')

    def test_from_dict_rejects_unknown_fields(self):
        # Passing an incidents.json *label* row where a script spec
        # belongs must fail with a clean message, not a TypeError.
        row = {
            "kind": "exact_hijack",
            "prefix": "10.0.0.0/8",
            "perpetrator": 666,
        }
        with pytest.raises(ValueError, match="unexpected fields"):
            IncidentSpec.from_dict(row)
        with pytest.raises(ValueError, match="missing its 'kind'"):
            IncidentSpec.from_dict({"start_index": 3})

    def test_from_dict_rejects_wrong_types_with_value_error(self):
        with pytest.raises(ValueError, match="invalid incident spec"):
            IncidentSpec.from_dict(
                {"kind": "exact_hijack", "start_index": 5, "duration": "3"}
            )

    def test_out_of_window_spec_reported_unrealized(self, tmp_path):
        calendar = StudyCalendar(
            datetime.date(1997, 11, 8), datetime.date(1997, 12, 7)
        )  # 30 days
        script = IncidentScript().add(
            IncidentKind.EXACT_HIJACK, 500, duration=2
        )
        summary = simulate_study(
            tmp_path / "arch",
            ScenarioConfig(
                scale=0.01,
                calendar=calendar,
                paper_archive_gaps=False,
                incidents=script,
            ),
        )
        assert summary["incidents_injected"] == 0
        assert summary["incidents_unrealized"] == 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            IncidentSpec(IncidentKind.EXACT_HIJACK, start_index=-1)
        with pytest.raises(ValueError):
            IncidentSpec(IncidentKind.EXACT_HIJACK, 0, duration=0)
        with pytest.raises(ValueError):
            IncidentSpec(IncidentKind.FLAPPING_FAULT, 0, duty_cycle=0.0)
        with pytest.raises(ValueError):
            IncidentScript.canned(5)

    def test_duration_clamps_to_window(self):
        spec = IncidentSpec(IncidentKind.PRIVATE_LEAK, 90, duration=60)
        assert spec.resolved_duration(100) == 10
        open_ended = IncidentSpec(IncidentKind.ANYCAST, 10)
        assert open_ended.resolved_duration(100) == 90


class TestInjection:
    def test_every_kind_realized_and_labeled(self, canned_study):
        directory, summary = canned_study
        assert summary["incidents_unrealized"] == 0
        labels = [
            IncidentLabel.from_dict(row)
            for row in ArchiveReader(directory).incident_labels()
        ]
        assert {label.kind.value for label in labels} == ALL_KINDS
        assert summary["incidents_injected"] == len(labels)

    def test_labels_are_well_formed(self, canned_study):
        directory, _summary = canned_study
        reader = ArchiveReader(directory)
        assert reader.has_incidents()
        labels = [
            IncidentLabel.from_dict(row) for row in reader.incident_labels()
        ]
        prefixes = [label.prefix for label in labels]
        assert len(set(prefixes)) == len(prefixes)  # one label per prefix
        for label in labels:
            assert 0 <= label.start_index <= label.end_index < CALENDAR.num_days
            assert label.duration_days >= 1
            if label.kind in (IncidentKind.ANYCAST, IncidentKind.IXP_CONFLICT):
                assert label.perpetrator is None
            else:
                assert label.perpetrator is not None
                assert label.perpetrator in label.origins
            if label.kind is IncidentKind.PRIVATE_LEAK:
                assert any(is_private_asn(asn) for asn in label.origins)
            if label.kind is IncidentKind.ANYCAST:
                assert len(label.origins) >= 4
            if label.kind is IncidentKind.IXP_CONFLICT:
                assert IXP_BLOCK.contains(label.prefix)

    def test_moas_incidents_visible_in_detections(self, canned_study):
        """Every MOAS-shaped incident surfaces in the conflict stream."""
        from repro.analysis.sources import detections_from_archive

        directory, _summary = canned_study
        days_seen: dict[Prefix, int] = {}
        for detection in detections_from_archive(directory):
            for conflict in detection.conflicts:
                days_seen[conflict.prefix] = (
                    days_seen.get(conflict.prefix, 0) + 1
                )
        moas_kinds = {
            IncidentKind.EXACT_HIJACK,
            IncidentKind.PRIVATE_LEAK,
            IncidentKind.ANYCAST,
            IncidentKind.IXP_CONFLICT,
            IncidentKind.FLAPPING_FAULT,
        }
        for row in ArchiveReader(directory).incident_labels():
            label = IncidentLabel.from_dict(row)
            if label.kind in moas_kinds:
                assert days_seen.get(label.prefix, 0) >= 1, label

    def test_subprefix_hijack_is_all_or_nothing(self, canned_study):
        """Partial fragment realization must not report as success."""
        directory, summary = canned_study
        fragments = sum(
            1
            for row in ArchiveReader(directory).incident_labels()
            if row["kind"] == "subprefix_hijack"
        )
        wanted = sum(
            spec.count
            for spec in IncidentScript.canned(CALENDAR.num_days)
            if spec.kind is IncidentKind.SUBPREFIX_HIJACK
        )
        # Either every fragment was labeled or the spec went into the
        # unrealized count — never a silently shrunk workload.
        assert fragments == wanted or summary["incidents_unrealized"] > 0
        assert fragments in (0, wanted)

    def test_organic_events_avoid_incident_prefixes(self, canned_study):
        """Incident labels stay the sole cause of their episodes."""
        directory, _summary = canned_study
        reader = ArchiveReader(directory)
        incident_prefixes = {
            row["prefix"] for row in reader.incident_labels()
        }
        organic_prefixes = {
            event["prefix"]
            for event in reader.ground_truth()
            if event["cause"]
            not in ("misconfig", "private_as", "exchange_point", "anycast")
        }
        # MOAS-shaped incidents do appear in the event log (under their
        # mapped cause), but no *other* organic process may reuse an
        # incident's prefix — even after the incident expires.
        assert not (incident_prefixes & organic_prefixes)
        # Stronger: each incident prefix has at most one event ever
        # (its own), so the label is the episode's sole explanation.
        from collections import Counter

        counts = Counter(
            event["prefix"] for event in reader.ground_truth()
        )
        for prefix in incident_prefixes:
            assert counts[prefix] <= 1, prefix

    def test_registry_incidents_are_registered(self, canned_study):
        """Sub-prefix and aggregate shapes land in the prefix registry."""
        directory, _summary = canned_study
        reader = ArchiveReader(directory)
        by_prefix = {entry.prefix: entry for entry in reader.registry}
        for row in reader.incident_labels():
            label = IncidentLabel.from_dict(row)
            if label.kind in (
                IncidentKind.SUBPREFIX_HIJACK,
                IncidentKind.FAULTY_AGGREGATION,
            ):
                entry = by_prefix[label.prefix]
                assert entry.owner == label.perpetrator
                assert entry.created_day == label.start_index


class TestDeterminism:
    def test_same_seed_and_script_byte_identical(self, tmp_path):
        """Seed + script fully determine archive bytes and labels."""
        calendar = StudyCalendar(
            datetime.date(1997, 11, 8), datetime.date(1998, 1, 6)
        )  # 60 days, enough for the suite but fast
        script = IncidentScript.canned(calendar.num_days)
        config = ScenarioConfig(
            scale=0.015,
            calendar=calendar,
            paper_archive_gaps=False,
            incidents=script,
        )
        first = tmp_path / "first"
        second = tmp_path / "second"
        simulate_study(first, config)
        simulate_study(second, config)
        for name in (
            "days.bin",
            "registry.bin",
            "paths.bin",
            "incidents.json",
            "ground_truth.json",
        ):
            assert (first / name).read_bytes() == (
                second / name
            ).read_bytes(), f"{name} differs between identical runs"

    def test_label_round_trip_through_json(self, canned_study):
        directory, _summary = canned_study
        rows = ArchiveReader(directory).incident_labels()
        for row in rows:
            label = IncidentLabel.from_dict(row)
            assert label.to_dict() == dict(row)
        # And the file itself is plain JSON.
        text = (directory / "incidents.json").read_text()
        assert json.loads(text) == rows
