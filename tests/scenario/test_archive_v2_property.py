"""Property tests: arbitrary worlds round-trip through the v2 store.

For any randomly generated registry / path table / day sequence —
including empty days, duplicate row runs, non-contiguous day indices
and maximum-length AS paths — writing the days as v2 and reading them
back must reproduce the records exactly, and must agree byte-for-value
with the v1 encoding of the same world.  This is the encode→decode
half of the format-equivalence guarantee; the study-level half lives
in ``tests/analysis/test_format_equivalence.py``.
"""

import datetime

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netbase.prefix import Prefix
from repro.scenario.archive import (
    ArchiveReader,
    ArchiveWriter,
    DayRecord,
    MAX_PATH_LENGTH,
    PeerRow,
    convert_archive,
)

START = datetime.date(1997, 11, 8)
PEERS = (701, 1239, 3561, 64511)
NUM_PREFIXES = 8


def paths_strategy():
    """A small pool of AS paths, lengths 0 through max."""
    return st.lists(
        st.lists(
            st.integers(min_value=1, max_value=2**32 - 1),
            max_size=6,
        ).map(tuple),
        min_size=1,
        max_size=5,
        unique=True,
    )


def days_strategy():
    """Random day specs: (peer subset, [(prefix, peer, origin, path)])."""
    row = st.tuples(
        st.integers(min_value=0, max_value=NUM_PREFIXES - 1),  # prefix id
        st.sampled_from(PEERS),
        st.integers(min_value=1, max_value=2**31),  # origin
        st.integers(min_value=0, max_value=4),  # path pool slot
    )
    day = st.tuples(
        st.sets(st.sampled_from(PEERS), min_size=1).map(
            lambda peers: tuple(sorted(peers))
        ),
        st.lists(row, max_size=10, unique_by=lambda r: (r[0], r[1])),
    )
    return st.lists(day, max_size=6)


def build(directory, format, path_pool, days):
    writer = ArchiveWriter(directory, format=format)
    for index in range(NUM_PREFIXES):
        writer.register_prefix(
            Prefix((10 << 24) | (index << 16), 16, strict=False), 42, 0
        )
    path_ids = [writer.intern_path(path) for path in path_pool]
    records = []
    for offset, (peers, rows) in enumerate(days):
        # Sort rows by prefix so same-prefix rows form runs, like the
        # collector writes them (v2 interns those runs; out-of-order
        # rows are covered too — they just intern as singleton runs).
        ordered = sorted(rows)
        records.append(
            DayRecord(
                day=START + datetime.timedelta(days=offset),
                day_index=offset,
                alive_count=NUM_PREFIXES,
                active_peers=peers,
                rows=tuple(
                    PeerRow(
                        prefix_id,
                        peer,
                        origin,
                        path_ids[slot % len(path_ids)],
                    )
                    for prefix_id, peer, origin, slot in ordered
                ),
            )
        )
    for record in records:
        writer.write_day(record)
    writer.finalize({"calendar_start": START.isoformat()})
    return records


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(path_pool=paths_strategy(), days=days_strategy())
def test_v2_roundtrip_equals_v1(tmp_path_factory, path_pool, days):
    base = tmp_path_factory.mktemp("prop-v2")
    records = build(base / "v2", "v2", path_pool, days)
    build(base / "v1", "v1", path_pool, days)

    reader_v2 = ArchiveReader(base / "v2")
    decoded_v2 = list(reader_v2.iter_days())
    assert decoded_v2 == records
    assert decoded_v2 == list(ArchiveReader(base / "v1").iter_days())

    # Interned tables must reproduce identities, not just day payloads.
    assert reader_v2.paths == list(path_pool)

    # Range positioning agrees with list slicing at every split point.
    for split in range(len(records) + 1):
        assert list(reader_v2.iter_days(split)) == records[split:]
        assert list(reader_v2.iter_days(0, split)) == records[:split]

    # And a format round-trip (v2 -> v1) restores the records too.
    convert_archive(base / "v2", base / "back", format="v1")
    assert list(ArchiveReader(base / "back").iter_days()) == records


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    length=st.sampled_from([0, 1, 254, MAX_PATH_LENGTH]),
    origin=st.integers(min_value=1, max_value=2**32 - 1),
)
def test_extreme_paths_roundtrip(tmp_path_factory, length, origin):
    """Empty and maximum-length AS paths survive both stores."""
    base = tmp_path_factory.mktemp("prop-v2-path")
    path = tuple(range(1, length + 1))
    for format in ("v1", "v2"):
        directory = base / format
        writer = ArchiveWriter(directory, format=format)
        pid = writer.register_prefix(
            Prefix.parse("198.51.100.0/24"), origin, 0
        )
        path_id = writer.intern_path(path)
        record = DayRecord(
            day=START,
            day_index=0,
            alive_count=1,
            active_peers=(701,),
            rows=(PeerRow(pid, 701, origin, path_id),),
        )
        writer.write_day(record)
        writer.finalize({"calendar_start": START.isoformat()})
        reader = ArchiveReader(directory)
        assert list(reader.iter_days()) == [record]
        assert reader.path(path_id) == path
