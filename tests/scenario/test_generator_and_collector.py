"""Tests for the event generator and collector configuration."""

import pytest

from repro.scenario.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.collector import CollectorConfig
from repro.scenario.events import Cause
from repro.scenario.generator import EventGenerator
from repro.scenario.routing import CollectorRouting
from repro.topology.generator import TopologyConfig, build_initial_model
from repro.util.rng import RngStreams


@pytest.fixture(scope="module")
def world_parts():
    streams = RngStreams(42)
    model, _plan, _factory = build_initial_model(
        TopologyConfig(scale=0.02), streams
    )
    collector = CollectorConfig.default_for_model(
        model, streams, num_days=100
    )
    routing = CollectorRouting(model.graph, list(collector.all_peer_asns))
    return model, collector, routing, streams


def make_generator(world_parts, conflicted=frozenset()):
    model, _collector, routing, streams = world_parts
    return EventGenerator(
        model,
        routing,
        DEFAULT_CALIBRATION,
        streams.child("test-gen"),
        num_days=100,
        scale=1.0,  # high rates so the tests get enough samples
        is_conflicted=lambda prefix: prefix in conflicted,
    )


class TestInitialEvents:
    def test_standing_population_sized_by_calibration(self, world_parts):
        _model, collector, _routing, _streams = world_parts
        generator = make_generator(world_parts)
        events = generator.initial_events(
            list(collector.active_peers(0))
        )
        # Scale 1.0 against a tiny topology: visibility filtering and
        # prefix contention drop a share of attempts, but the standing
        # population must still be a substantial fraction of the
        # calibrated counts (full-size calibration is asserted by the
        # figure benchmarks, not here).
        expected = (
            DEFAULT_CALIBRATION.initial_static_multihoming
            + DEFAULT_CALIBRATION.initial_private_as
            + DEFAULT_CALIBRATION.initial_traffic_engineering
        )
        assert len(events) >= 0.4 * expected

    def test_initial_events_span_day_zero(self, world_parts):
        _model, collector, _routing, _streams = world_parts
        generator = make_generator(world_parts)
        for event in generator.initial_events(
            list(collector.active_peers(0))
        ):
            assert event.start_index <= 0 <= event.end_index

    def test_exchange_point_events_cover_whole_study(self, world_parts):
        model, collector, _routing, _streams = world_parts
        generator = make_generator(world_parts)
        events = [
            event
            for event in generator.initial_events(
                list(collector.active_peers(0))
            )
            if event.cause is Cause.EXCHANGE_POINT
        ]
        assert len(events) == len(model.ixps)
        for event in events:
            assert event.start_index == 0
            assert event.end_index == 99


class TestBirths:
    def test_births_have_valid_structure(self, world_parts):
        _model, collector, _routing, _streams = world_parts
        generator = make_generator(world_parts)
        peers = list(collector.active_peers(0))
        seen_causes = set()
        for day in range(40):
            for event in generator.births(day, peers):
                seen_causes.add(event.cause)
                assert event.start_index == day
                assert len(event.origins) >= 2
                assert len(set(event.origins)) == len(event.origins)
        # With scale-1 rates over 40 days every organic cause appears.
        assert Cause.MISCONFIG in seen_causes
        assert Cause.PROVIDER_TRANSITION in seen_causes
        assert Cause.STATIC_MULTIHOMING in seen_causes

    def test_no_duplicate_prefixes_within_day(self, world_parts):
        _model, collector, _routing, _streams = world_parts
        generator = make_generator(world_parts)
        peers = list(collector.active_peers(0))
        for day in range(20):
            born = generator.births(day, peers)
            prefixes = [event.prefix for event in born]
            assert len(prefixes) == len(set(prefixes))

    def test_conflicted_prefixes_skipped(self, world_parts):
        model, collector, _routing, _streams = world_parts
        conflicted = frozenset(model.prefix_owner)
        generator = make_generator(world_parts, conflicted=conflicted)
        peers = list(collector.active_peers(0))
        for day in range(5):
            assert generator.births(day, peers) == []


class TestMassOrigination:
    def test_visible_target_reached(self, world_parts):
        _model, collector, _routing, _streams = world_parts
        generator = make_generator(world_parts)
        peers = list(collector.active_peers(0))
        events = generator.mass_origination(
            faulty_asn=8584,
            day_index=10,
            durations=[1] * 50,
            active_peers=peers,
        )
        assert len(events) == 50
        for event in events:
            assert 8584 in event.origins
            assert event.start_index == event.end_index == 10
            assert event.cause is Cause.FAULT_MASS_ORIGINATION

    def test_decay_durations(self, world_parts):
        _model, collector, _routing, _streams = world_parts
        generator = make_generator(world_parts)
        peers = list(collector.active_peers(0))
        events = generator.mass_origination(
            faulty_asn=15412,
            day_index=0,
            durations=[3, 3, 2, 1],
            active_peers=peers,
        )
        durations = sorted(
            event.end_index - event.start_index + 1 for event in events
        )
        assert durations == [1, 2, 3, 3]


class TestCollectorConfig:
    def test_peer_growth(self, world_parts):
        _model, collector, _routing, _streams = world_parts
        early = collector.active_peers(0)
        late = collector.active_peers(99)
        assert len(early) < len(late)
        assert set(early) <= set(late)

    def test_anchor_tier1_peers_from_day_zero(self, world_parts):
        _model, collector, _routing, _streams = world_parts
        assert 701 in collector.active_peers(0)
        assert 1239 in collector.active_peers(0)

    def test_duplicate_peers_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CollectorConfig(peer_schedule=((701, 0), (701, 5)))

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            CollectorConfig(peer_schedule=())


class TestCalibration:
    def test_ramp_endpoints(self):
        calibration = Calibration()
        assert calibration.ramp(0, 1000) == pytest.approx(1.0)
        assert calibration.ramp(999, 1000) == pytest.approx(
            calibration.ramp_factor
        )

    def test_ramp_single_day(self):
        assert Calibration().ramp(0, 1) == 1.0
