"""Tests for the study timeline and archive gaps."""

import datetime

import pytest

from repro.scenario.timeline import (
    CLASSIFICATION_WINDOW,
    PROTECTED_DATES,
    StudyTimeline,
)
from repro.util.dates import PAPER_CALENDAR, StudyCalendar
from repro.util.rng import RngStreams


class TestPaperTimeline:
    def test_observation_count_matches_paper(self):
        timeline = StudyTimeline.paper_timeline(RngStreams(1))
        assert timeline.num_observation_days == 1279

    def test_protected_dates_always_observed(self):
        timeline = StudyTimeline.paper_timeline(RngStreams(1))
        for day in PROTECTED_DATES:
            assert timeline.is_observed(day), f"{day} must be observed"

    def test_classification_window_fully_observed(self):
        timeline = StudyTimeline.paper_timeline(RngStreams(1))
        start, end = CLASSIFICATION_WINDOW
        day = start
        while day <= end:
            assert timeline.is_observed(day)
            day += datetime.timedelta(days=1)

    def test_deterministic_given_seed(self):
        first = StudyTimeline.paper_timeline(RngStreams(7))
        second = StudyTimeline.paper_timeline(RngStreams(7))
        assert first.observed == second.observed

    def test_gaps_differ_across_seeds(self):
        first = StudyTimeline.paper_timeline(RngStreams(1))
        second = StudyTimeline.paper_timeline(RngStreams(2))
        assert first.observed != second.observed

    def test_observation_days_sorted(self):
        timeline = StudyTimeline.paper_timeline(RngStreams(1))
        days = timeline.observation_days()
        assert list(days) == sorted(days)
        assert timeline.last_observed_day() == days[-1]

    def test_custom_gap_count(self):
        timeline = StudyTimeline.paper_timeline(RngStreams(1), gap_days=10)
        assert (
            timeline.num_observation_days
            == PAPER_CALENDAR.num_days - 10
        )


class TestFullyObserved:
    def test_no_gaps(self):
        calendar = StudyCalendar(
            datetime.date(2001, 1, 1), datetime.date(2001, 1, 31)
        )
        timeline = StudyTimeline.fully_observed(calendar)
        assert timeline.num_observation_days == 31

    def test_out_of_window_rejected(self):
        calendar = StudyCalendar(
            datetime.date(2001, 1, 1), datetime.date(2001, 1, 31)
        )
        with pytest.raises(ValueError, match="outside calendar"):
            StudyTimeline(
                calendar=calendar,
                observed=frozenset({datetime.date(2002, 1, 1)}),
            )
