"""Test package: tests/scenario."""
