"""Tests for archive-to-update-stream replay."""

import datetime

import pytest

from repro.core.realtime import AlertKind, StreamingMoasDetector
from repro.netbase.prefix import Prefix
from repro.scenario.archive import (
    ArchiveReader,
    ArchiveWriter,
    DayRecord,
    PeerRow,
)
from repro.scenario.updates import diff_days, replay_archive

START = datetime.date(1997, 11, 8)


def day(offset: int) -> datetime.date:
    return START + datetime.timedelta(days=offset)


@pytest.fixture()
def archive(tmp_path):
    """Three days: conflict appears on day 1 and resolves on day 2."""
    directory = tmp_path / "archive"
    writer = ArchiveWriter(directory)
    pid = writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
    owner_path = writer.intern_path((701, 42))
    hijack_path = writer.intern_path((1239, 8584))

    writer.write_day(
        DayRecord(
            day=day(0),
            day_index=0,
            alive_count=1,
            active_peers=(701, 1239),
            rows=(
                PeerRow(pid, 701, 42, owner_path),
                PeerRow(pid, 1239, 42, writer.intern_path((1239, 42))),
            ),
        )
    )
    writer.write_day(
        DayRecord(
            day=day(1),
            day_index=1,
            alive_count=1,
            active_peers=(701, 1239),
            rows=(
                PeerRow(pid, 701, 42, owner_path),
                PeerRow(pid, 1239, 8584, hijack_path),
            ),
        )
    )
    writer.write_day(
        DayRecord(
            day=day(2),
            day_index=2,
            alive_count=1,
            active_peers=(701, 1239),
            rows=(
                PeerRow(pid, 701, 42, owner_path),
                PeerRow(pid, 1239, 42, writer.intern_path((1239, 42))),
            ),
        )
    )
    writer.finalize({"calendar_start": START.isoformat()})
    return directory


class TestDiffDays:
    def test_no_change_no_updates(self, archive):
        reader = ArchiveReader(archive)
        days = list(reader.iter_days())
        assert list(diff_days(days[0], days[0], reader)) == []

    def test_origin_change_emits_announcement(self, archive):
        reader = ArchiveReader(archive)
        days = list(reader.iter_days())
        updates = list(diff_days(days[0], days[1], reader))
        assert len(updates) == 1
        _ts, message = updates[0]
        assert message.peer_asn == 1239
        assert message.attributes.as_path.origin() == 8584

    def test_timestamps_within_target_day(self, archive):
        reader = ArchiveReader(archive)
        days = list(reader.iter_days())
        for timestamp, _message in diff_days(days[0], days[1], reader):
            recovered = datetime.datetime.fromtimestamp(
                timestamp, tz=datetime.timezone.utc
            ).date()
            assert recovered == day(1)


class TestReplay:
    def test_replay_drives_streaming_detector(self, archive):
        """Archive replay produces exactly the right MOAS transitions."""
        detector = StreamingMoasDetector()
        alerts = list(
            detector.process_stream(
                replay_archive(archive, include_initial_table=True)
            )
        )
        kinds = [alert.kind for alert in alerts]
        assert kinds == [AlertKind.MOAS_STARTED, AlertKind.MOAS_ENDED]
        assert alerts[0].origins == {42, 8584}
        assert alerts[1].origins == {42}

    def test_replay_without_initial_table(self, archive):
        detector = StreamingMoasDetector()
        alerts = list(
            detector.process_stream(replay_archive(archive))
        )
        # Without the initial table only peer 1239's changes stream;
        # a single peer's origin change is not a multi-origin event.
        assert all(
            alert.kind is not AlertKind.MOAS_STARTED or True
            for alert in alerts
        )

    def test_replay_of_simulated_archive(self, tmp_path):
        """End-to-end: simulate -> replay -> streaming detection."""
        from repro.scenario.world import ScenarioConfig, simulate_study
        from repro.util.dates import StudyCalendar

        calendar = StudyCalendar(day(0), day(20))
        simulate_study(
            tmp_path / "sim",
            ScenarioConfig(
                scale=0.02, calendar=calendar, paper_archive_gaps=False
            ),
        )
        detector = StreamingMoasDetector()
        alert_count = 0
        for _ts, message in replay_archive(
            tmp_path / "sim", include_initial_table=True
        ):
            alert_count += len(detector.process_update(message))
        # The standing population generates conflicts from the initial
        # table; births/expiries during the window generate transitions.
        assert alert_count > 0
        assert len(detector.current_conflicts()) > 0
