"""Integration tests for the scenario world and study simulation."""

import datetime

import pytest

from repro.scenario.archive import ArchiveReader
from repro.scenario.calibration import PAPER
from repro.scenario.world import ScenarioConfig, ScenarioWorld, simulate_study
from repro.util.dates import StudyCalendar

SMALL_CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1998, 1, 16)
)  # 70 days


@pytest.fixture(scope="module")
def small_archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("archive")
    config = ScenarioConfig(
        scale=0.02, calendar=SMALL_CALENDAR, paper_archive_gaps=False
    )
    summary = simulate_study(directory, config)
    return directory, summary


class TestSimulation:
    def test_every_day_observed(self, small_archive):
        _directory, summary = small_archive
        assert summary["observed_days"] == SMALL_CALENDAR.num_days

    def test_archive_readable(self, small_archive):
        directory, summary = small_archive
        reader = ArchiveReader(directory)
        days = list(reader.iter_days())
        assert len(days) == summary["observed_days"]

    def test_alive_count_monotone(self, small_archive):
        directory, _summary = small_archive
        reader = ArchiveReader(directory)
        alive = [record.alive_count for record in reader.iter_days()]
        assert alive == sorted(alive)
        assert alive[-1] == reader.num_prefixes

    def test_rows_reference_valid_ids(self, small_archive):
        directory, _summary = small_archive
        reader = ArchiveReader(directory)
        for record in reader.iter_days():
            for row in record.rows:
                assert row.prefix_id < record.alive_count
                path = reader.path(row.path_id)
                assert path[0] == row.peer_asn
                assert path[-1] == row.origin

    def test_conflicts_present_every_day(self, small_archive):
        # The standing population guarantees conflicts from day 0.
        directory, _summary = small_archive
        reader = ArchiveReader(directory)
        for record in reader.iter_days():
            distinct = {row.prefix_id for row in record.rows}
            assert len(distinct) >= 1

    def test_ground_truth_well_formed(self, small_archive):
        directory, _summary = small_archive
        reader = ArchiveReader(directory)
        truth = reader.ground_truth()
        assert truth, "no events logged"
        for entry in truth:
            assert entry["cause"]
            assert len(entry["origins"]) >= 2
            assert isinstance(entry["valid"], bool)

    def test_determinism(self, tmp_path):
        config = ScenarioConfig(
            scale=0.02, calendar=SMALL_CALENDAR, paper_archive_gaps=False
        )
        first = simulate_study(tmp_path / "a", config)
        second = simulate_study(tmp_path / "b", config)
        assert first["events_total"] == second["events_total"]
        rows_a = (tmp_path / "a" / "days.bin").read_bytes()
        rows_b = (tmp_path / "b" / "days.bin").read_bytes()
        assert rows_a == rows_b

    def test_seed_changes_output(self, tmp_path):
        base = ScenarioConfig(
            scale=0.02, calendar=SMALL_CALENDAR, paper_archive_gaps=False
        )
        other = ScenarioConfig(
            scale=0.02,
            seed=7,
            calendar=SMALL_CALENDAR,
            paper_archive_gaps=False,
        )
        first = simulate_study(tmp_path / "a", base)
        second = simulate_study(tmp_path / "b", other)
        assert (tmp_path / "a" / "days.bin").read_bytes() != (
            tmp_path / "b" / "days.bin"
        ).read_bytes() or first["events_total"] != second["events_total"]


class TestScriptedSpike:
    def test_1998_spike_reproduced(self, tmp_path):
        calendar = StudyCalendar(
            datetime.date(1998, 3, 25), datetime.date(1998, 4, 20)
        )
        config = ScenarioConfig(
            scale=0.02, calendar=calendar, paper_archive_gaps=False
        )
        simulate_study(tmp_path / "spike", config)
        reader = ArchiveReader(tmp_path / "spike")
        counts = {}
        spike_day_rows = None
        for record in reader.iter_days():
            counts[record.day] = len({row.prefix_id for row in record.rows})
            if record.day == PAPER.spike_1998_date:
                spike_day_rows = record.rows
        spike_count = counts[PAPER.spike_1998_date]
        normal = counts[datetime.date(1998, 3, 30)]
        assert spike_count > 5 * max(normal, 1)
        # The faulty AS appears in origin position on the spike day.
        assert spike_day_rows is not None
        origins = {row.origin for row in spike_day_rows}
        assert PAPER.spike_1998_faulty_asn in origins

    def test_spike_is_one_day(self, tmp_path):
        calendar = StudyCalendar(
            datetime.date(1998, 4, 1), datetime.date(1998, 4, 14)
        )
        config = ScenarioConfig(
            scale=0.02, calendar=calendar, paper_archive_gaps=False
        )
        simulate_study(tmp_path / "spike", config)
        reader = ArchiveReader(tmp_path / "spike")
        counts = {
            record.day: len({row.prefix_id for row in record.rows})
            for record in reader.iter_days()
        }
        after = counts[datetime.date(1998, 4, 9)]
        spike = counts[PAPER.spike_1998_date]
        assert after < spike / 4


class TestWorldInternals:
    def test_world_builds_with_paper_calendar_gaps(self):
        world = ScenarioWorld(ScenarioConfig(scale=0.01))
        assert world.timeline.num_observation_days == 1279

    def test_scaled_helper(self):
        config = ScenarioConfig(scale=0.1)
        assert config.scaled(100) == 10
        assert config.scaled(1) == 1
