"""Tests for collector-side routing views."""

from repro.bgp.relationships import ASGraph
from repro.scenario.routing import CollectorRouting


def small_internet() -> ASGraph:
    graph = ASGraph()
    graph.add_peering(701, 1239)
    graph.add_customer(701, 100)
    graph.add_customer(1239, 200)
    graph.add_customer(100, 7)
    graph.add_customer(200, 8)
    graph.add_customer(100, 9)
    graph.add_customer(200, 9)
    return graph


class TestPeerViews:
    def test_views_cover_reachable_peers(self):
        routing = CollectorRouting(small_internet(), [701, 1239, 100])
        views = routing.peer_views(7)
        assert set(views) == {701, 1239, 100}
        assert views[100].path == (100, 7)

    def test_views_cached(self):
        routing = CollectorRouting(small_internet(), [701])
        assert routing.peer_views(7) is routing.peer_views(7)

    def test_paths_start_at_peer_end_at_origin(self):
        routing = CollectorRouting(small_internet(), [701, 200])
        for peer, view in routing.peer_views(7).items():
            assert view.path[0] == peer
            assert view.path[-1] == 7

    def test_oracle_cache_evicted(self):
        routing = CollectorRouting(small_internet(), [701])
        routing.peer_views(7)
        # Only the compact peer views remain cached.
        assert 7 not in routing._oracle._cache


class TestChooseOrigins:
    def test_divergent_choice_makes_conflict_visible(self):
        routing = CollectorRouting(small_internet(), [100, 200])
        # Origins 7 (under 100) and 8 (under 200): each peer prefers
        # its customer-side origin.
        chosen = routing.choose_origins([7, 8], [100, 200])
        assert chosen[100][0] == 7
        assert chosen[200][0] == 8
        assert routing.conflict_visible([7, 8], [100, 200])

    def test_agreeing_peers_hide_conflict(self):
        routing = CollectorRouting(small_internet(), [100])
        assert not routing.conflict_visible([7, 8], [100])

    def test_visible_origins(self):
        routing = CollectorRouting(small_internet(), [100, 200])
        assert routing.visible_origins([7, 8], [100, 200]) == {7, 8}

    def test_peers_without_route_omitted(self):
        graph = small_internet()
        graph.add_as(31337)  # isolated
        routing = CollectorRouting(graph, [31337, 100])
        chosen = routing.choose_origins([7], [31337, 100])
        assert 31337 not in chosen
        assert 100 in chosen


class TestPivotViews:
    def test_round_robin_partition(self):
        routing = CollectorRouting(small_internet(), [100, 200, 701, 1239])
        views = routing.pivot_views(100, (100, 7), [100, 200, 701, 1239])
        origins = [origin for origin, _view in views.values()]
        assert set(origins) == {100, 7}

    def test_non_pivot_origin_extends_path(self):
        routing = CollectorRouting(small_internet(), [200])
        views = routing.pivot_views(100, (7, 100), [200, 701])
        for peer, (origin, view) in views.items():
            if origin == 100:
                assert view.path[-1] == 100
            else:
                # Path runs through the pivot then one hop beyond.
                assert view.path[-2] == 100
                assert view.path[-1] == 7

    def test_reachable_peer_count(self):
        graph = small_internet()
        graph.add_as(31337)
        routing = CollectorRouting(graph, [100, 200, 31337])
        assert routing.pivot_reachable_peers(7, [100, 200, 31337]) == 2
