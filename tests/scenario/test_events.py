"""Tests for conflict-event semantics."""

import pytest

from repro.netbase.prefix import Prefix
from repro.scenario.events import Cause, ConflictEvent

PREFIX = Prefix.parse("192.0.2.0/24")


def make_event(**overrides) -> ConflictEvent:
    defaults = dict(
        prefix=PREFIX,
        origins=(42, 43),
        cause=Cause.MISCONFIG,
        start_index=10,
        end_index=20,
    )
    defaults.update(overrides)
    return ConflictEvent(**defaults)


class TestValidation:
    def test_single_origin_rejected(self):
        with pytest.raises(ValueError, match="2 origins"):
            make_event(origins=(42,))

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="before it starts"):
            make_event(start_index=5, end_index=4)

    def test_bad_duty_cycle_rejected(self):
        with pytest.raises(ValueError, match="duty cycle"):
            make_event(duty_cycle=0.0)
        with pytest.raises(ValueError, match="duty cycle"):
            make_event(duty_cycle=1.5)

    def test_pivot_requires_two_origins(self):
        with pytest.raises(ValueError, match="two origins"):
            make_event(origins=(1, 2, 3), pivot=7)


class TestActivity:
    def test_active_inside_window(self):
        event = make_event()
        assert event.active_on(10)
        assert event.active_on(15)
        assert event.active_on(20)

    def test_inactive_outside_window(self):
        event = make_event()
        assert not event.active_on(9)
        assert not event.active_on(21)

    def test_continuous_event_present_every_day(self):
        event = make_event()
        assert all(event.active_on(day) for day in range(10, 21))

    def test_intermittent_event_flickers_deterministically(self):
        event = make_event(
            start_index=0, end_index=199, duty_cycle=0.5, flicker_seed=3
        )
        pattern = [event.active_on(day) for day in range(200)]
        assert pattern == [event.active_on(day) for day in range(200)]
        active = sum(pattern)
        # Roughly half the days, and definitely not all or none.
        assert 60 <= active <= 140

    def test_intermittent_endpoints_always_present(self):
        # First/last day presence preserves the recorded extent.
        event = make_event(
            start_index=0, end_index=99, duty_cycle=0.5, flicker_seed=9
        )
        assert event.active_on(0)
        assert event.active_on(99)

    def test_negative_start_supported(self):
        # Conflicts already in progress when the study window opens.
        event = make_event(start_index=-50, end_index=5)
        assert event.active_on(0)


class TestCauseTaxonomy:
    def test_valid_causes(self):
        assert Cause.EXCHANGE_POINT.is_valid
        assert Cause.STATIC_MULTIHOMING.is_valid
        assert Cause.PRIVATE_AS.is_valid
        assert Cause.TRAFFIC_ENGINEERING.is_valid
        assert Cause.PROVIDER_TRANSITION.is_valid

    def test_invalid_causes(self):
        assert not Cause.MISCONFIG.is_valid
        assert not Cause.FAULT_MASS_ORIGINATION.is_valid

    def test_private_asn_flagging(self):
        event = make_event(origins=(42, 64513))
        assert event.uses_private_asn()
        assert not make_event().uses_private_asn()
