"""Scale invariance: scale-free statistics must not depend on scale.

DESIGN.md promises that durations, shares and orderings are invariant
under the ``scale`` parameter while absolute counts scale linearly.
This is what makes laptop-size reproductions meaningful, so it gets its
own test: two studies at different scales over the same window must
agree on the scale-free statistics within stochastic tolerance.
"""

import datetime

import pytest

from repro.analysis.pipeline import StudyPipeline
from repro.analysis.sources import detections_from_archive
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1998, 11, 7)
)  # one year


@pytest.fixture(scope="module")
def two_scales(tmp_path_factory):
    base = tmp_path_factory.mktemp("scales")
    results = {}
    for scale in (0.02, 0.05):
        config = ScenarioConfig(
            scale=scale, calendar=CALENDAR, paper_archive_gaps=False
        )
        directory = base / f"s{scale}"
        simulate_study(directory, config)
        results[scale] = StudyPipeline().run(
            detections_from_archive(directory)
        )
    return results


class TestScaleInvariance:
    def test_duration_expectation_scale_free(self, two_scales):
        small = two_scales[0.02].duration_expectations
        large = two_scales[0.05].duration_expectations
        for threshold in (0, 1, 9):
            assert threshold in small and threshold in large
            ratio = small[threshold] / large[threshold]
            assert 0.5 <= ratio <= 2.0, (
                f">{threshold}d: {small[threshold]:.1f} vs "
                f"{large[threshold]:.1f}"
            )

    def test_counts_scale_roughly_linearly(self, two_scales):
        small = two_scales[0.02].total_conflicts
        large = two_scales[0.05].total_conflicts
        measured_ratio = large / small
        expected_ratio = 0.05 / 0.02
        assert 0.5 * expected_ratio <= measured_ratio <= 1.6 * expected_ratio

    def test_one_time_share_scale_free(self, two_scales):
        shares = {
            scale: results.one_time_conflicts / results.total_conflicts
            for scale, results in two_scales.items()
        }
        assert abs(shares[0.02] - shares[0.05]) < 0.25

    def test_24_dominance_at_both_scales(self, two_scales):
        for results in two_scales.values():
            for by_length in results.length_distribution.values():
                if sum(by_length.values()) < 5:
                    continue
                assert max(by_length, key=by_length.get) == 24

    def test_spike_day_is_peak_at_both_scales(self, two_scales):
        for results in two_scales.values():
            assert results.peak_days[0][0] == datetime.date(1998, 4, 7)
