"""Failure-injection tests: corrupted CDS archives fail loudly.

Every corruption — torn file, flipped bit, lying index — must raise a
clean :class:`ArchiveError` (never crash with a low-level
``struct.error``, hang, or silently return partial data), and
``repro convert`` on a corrupt source must fail without leaving any
half-written output behind.
"""

import datetime
import json
import struct

import pytest

from repro.netbase.prefix import Prefix
from repro.scenario.archive import (
    _TRAILER,
    ArchiveError,
    ArchiveReader,
    ArchiveWriter,
    DayRecord,
    PeerRow,
    convert_archive,
)


def _build(directory, format):
    writer = ArchiveWriter(directory, format=format)
    pid = writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
    path_id = writer.intern_path((701, 43))
    for index in range(3):
        writer.write_day(
            DayRecord(
                day=datetime.date(1997, 11, 8)
                + datetime.timedelta(days=index),
                day_index=index,
                alive_count=1,
                active_peers=(701,),
                rows=(PeerRow(pid, 701, 43 + index, path_id),),
            )
        )
    writer.finalize({"calendar_start": "1997-11-08"})
    return directory


@pytest.fixture()
def archive(tmp_path):
    return _build(tmp_path / "archive", "v1")


@pytest.fixture()
def archive_v2(tmp_path):
    return _build(tmp_path / "archive-v2", "v2")


class TestCorruption:
    def test_bad_registry_magic(self, archive):
        registry = archive / "registry.bin"
        data = bytearray(registry.read_bytes())
        data[:4] = b"XXXX"
        registry.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="magic"):
            ArchiveReader(archive)

    def test_bad_paths_magic(self, archive):
        paths = archive / "paths.bin"
        data = bytearray(paths.read_bytes())
        data[:4] = b"XXXX"
        paths.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="magic"):
            ArchiveReader(archive)

    def test_bad_days_magic(self, archive):
        days = archive / "days.bin"
        data = bytearray(days.read_bytes())
        data[:4] = b"XXXX"
        days.write_bytes(bytes(data))
        reader = ArchiveReader(archive)
        with pytest.raises(ValueError, match="magic"):
            list(reader.iter_days())

    def test_missing_manifest(self, archive):
        (archive / "manifest.json").unlink()
        with pytest.raises(FileNotFoundError):
            ArchiveReader(archive)

    def test_manifest_without_calendar_start(self, archive):
        manifest_path = archive / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["calendar_start"]
        manifest_path.write_text(json.dumps(manifest))
        reader = ArchiveReader(archive)
        with pytest.raises(ValueError, match="calendar_start"):
            list(reader.iter_days())

    def test_intact_archive_reads_fine(self, archive):
        reader = ArchiveReader(archive)
        days = list(reader.iter_days())
        assert len(days) == 3
        assert days[0].rows[0].origin == 43

    def test_truncated_day_header(self, archive):
        days = archive / "days.bin"
        days.write_bytes(days.read_bytes()[:-60])
        with pytest.raises(ArchiveError, match="truncated"):
            list(ArchiveReader(archive).iter_days())

    def test_truncated_row_block(self, archive):
        days = archive / "days.bin"
        days.write_bytes(days.read_bytes()[:-5])
        with pytest.raises(ArchiveError, match="truncated"):
            list(ArchiveReader(archive).iter_days())

    def test_truncation_at_record_boundary_detected(self, archive):
        """A clean-EOF truncation must not pass for a shorter archive."""
        days = archive / "days.bin"
        record_size = 14 + 4 + 16  # header + one peer + one row
        days.write_bytes(days.read_bytes()[:-record_size])
        reader = ArchiveReader(archive)
        with pytest.raises(ArchiveError, match="manifest says"):
            list(reader.iter_days())
        # A worker handed only the missing tail range must fail too,
        # not silently return an empty chunk.
        with pytest.raises(ArchiveError, match="manifest says"):
            list(reader.iter_days(2, 3))

    def test_truncated_registry(self, archive):
        registry = archive / "registry.bin"
        registry.write_bytes(registry.read_bytes()[:-3])
        with pytest.raises(ArchiveError, match="truncated"):
            ArchiveReader(archive)

    def test_truncated_path_table(self, archive):
        paths = archive / "paths.bin"
        paths.write_bytes(paths.read_bytes()[:-2])
        with pytest.raises(ArchiveError, match="truncated"):
            ArchiveReader(archive)


def _patch_trailer(days_path, *, offsets=None, num_days=None):
    """Rewrite one v2 index offset (and re-seal the footer CRC)."""
    import zlib

    data = bytearray(days_path.read_bytes())
    trailer_start = len(data) - _TRAILER.size
    footer_start, index_start, count, _crc, end_magic = _TRAILER.unpack_from(
        data, trailer_start
    )
    if offsets:
        for position, value in offsets.items():
            struct.pack_into("<Q", data, index_start + 8 * position, value)
    if num_days is not None:
        count = num_days
    crc = zlib.crc32(data[footer_start:trailer_start])
    _TRAILER.pack_into(
        data, trailer_start, footer_start, index_start, count, crc, end_magic
    )
    days_path.write_bytes(bytes(data))


class TestV2Corruption:
    def test_intact_archive_reads_fine(self, archive_v2):
        reader = ArchiveReader(archive_v2)
        days = list(reader.iter_days())
        assert len(days) == 3
        assert [day.rows[0].origin for day in days] == [43, 44, 45]

    def test_bad_days_magic(self, archive_v2):
        days = archive_v2 / "days.bin"
        data = bytearray(days.read_bytes())
        data[:4] = b"XXXX"
        days.write_bytes(bytes(data))
        reader = ArchiveReader(archive_v2)
        with pytest.raises(ArchiveError, match="magic"):
            list(reader.iter_days())

    def test_truncated_footer(self, archive_v2):
        days = archive_v2 / "days.bin"
        days.write_bytes(days.read_bytes()[:-10])
        with pytest.raises(ArchiveError, match="magic|truncated"):
            ArchiveReader(archive_v2)

    def test_footer_shorter_than_trailer(self, archive_v2):
        days = archive_v2 / "days.bin"
        days.write_bytes(days.read_bytes()[:8])
        with pytest.raises(ArchiveError, match="truncated"):
            ArchiveReader(archive_v2)

    def test_bit_flipped_frame(self, archive_v2):
        days = archive_v2 / "days.bin"
        data = bytearray(days.read_bytes())
        # Flip a bit inside the first frame's body (after the magic and
        # the 8-byte frame header).
        data[13] ^= 0x40
        days.write_bytes(bytes(data))
        reader = ArchiveReader(archive_v2)
        with pytest.raises(ArchiveError, match="checksum"):
            list(reader.iter_days())

    def test_bit_flipped_footer_table(self, archive_v2):
        days = archive_v2 / "days.bin"
        data = bytearray(days.read_bytes())
        trailer_start = len(data) - _TRAILER.size
        footer_start, _, _, _, _ = _TRAILER.unpack_from(data, trailer_start)
        data[footer_start + 2] ^= 0x01
        days.write_bytes(bytes(data))
        with pytest.raises(ArchiveError, match="checksum"):
            ArchiveReader(archive_v2)

    def test_index_pointing_past_eof(self, archive_v2):
        days = archive_v2 / "days.bin"
        _patch_trailer(days, offsets={1: 10**9})
        reader = ArchiveReader(archive_v2)
        with pytest.raises(ArchiveError, match="outside|overruns"):
            list(reader.iter_days())

    def test_index_pointing_into_footer(self, archive_v2):
        days = archive_v2 / "days.bin"
        data = days.read_bytes()
        footer_start, _, _, _, _ = _TRAILER.unpack_from(
            data, len(data) - _TRAILER.size
        )
        _patch_trailer(days, offsets={0: footer_start - 2})
        reader = ArchiveReader(archive_v2)
        with pytest.raises(ArchiveError, match="outside|overruns"):
            list(reader.iter_days())

    def test_day_count_beyond_index_rejected(self, archive_v2):
        days = archive_v2 / "days.bin"
        _patch_trailer(days, num_days=9)
        with pytest.raises(ArchiveError, match="index"):
            ArchiveReader(archive_v2)

    def test_manifest_day_count_mismatch_rejected(self, archive_v2):
        manifest_path = archive_v2 / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["num_days"] = 9
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArchiveError, match="manifest says"):
            ArchiveReader(archive_v2)

    def test_missing_calendar_start_still_fails_cleanly(self, archive_v2):
        manifest_path = archive_v2 / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["calendar_start"]
        manifest_path.write_text(json.dumps(manifest))
        reader = ArchiveReader(archive_v2)
        with pytest.raises(ValueError, match="calendar_start"):
            list(reader.iter_days())


class TestConvertAtomicity:
    """A corrupt source must never leave a half-written destination."""

    def _assert_nothing_written(self, destination):
        assert not destination.exists()
        leftovers = [
            path
            for path in destination.parent.iterdir()
            if path.name.startswith(f".{destination.name}.")
        ]
        assert leftovers == []

    def test_corrupt_v1_rows_fail_atomically(self, archive, tmp_path):
        days = archive / "days.bin"
        days.write_bytes(days.read_bytes()[:-5])
        destination = tmp_path / "out"
        with pytest.raises(ArchiveError, match="truncated"):
            convert_archive(archive, destination)
        self._assert_nothing_written(destination)

    def test_corrupt_v2_frame_fails_atomically(self, archive_v2, tmp_path):
        days = archive_v2 / "days.bin"
        data = bytearray(days.read_bytes())
        data[13] ^= 0x40
        days.write_bytes(bytes(data))
        destination = tmp_path / "out"
        with pytest.raises(ArchiveError, match="checksum"):
            convert_archive(archive_v2, destination, format="v1")
        self._assert_nothing_written(destination)

    def test_corrupt_registry_fails_atomically(self, archive, tmp_path):
        registry = archive / "registry.bin"
        data = bytearray(registry.read_bytes())
        data[:4] = b"XXXX"
        registry.write_bytes(bytes(data))
        destination = tmp_path / "out"
        with pytest.raises(ArchiveError, match="magic"):
            convert_archive(archive, destination)
        self._assert_nothing_written(destination)

    def test_cli_convert_corrupt_input_fails_cleanly(
        self, archive, tmp_path, capsys
    ):
        from repro.api.cli import main

        days = archive / "days.bin"
        days.write_bytes(days.read_bytes()[:-5])
        destination = tmp_path / "out"
        assert main(["convert", str(archive), str(destination)]) == 1
        assert "repro convert:" in capsys.readouterr().err
        self._assert_nothing_written(destination)
