"""Failure-injection tests: corrupted CDS archives fail loudly."""

import datetime
import json

import pytest

from repro.netbase.prefix import Prefix
from repro.scenario.archive import (
    ArchiveReader,
    ArchiveWriter,
    DayRecord,
    PeerRow,
)


@pytest.fixture()
def archive(tmp_path):
    directory = tmp_path / "archive"
    writer = ArchiveWriter(directory)
    pid = writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
    path_id = writer.intern_path((701, 43))
    writer.write_day(
        DayRecord(
            day=datetime.date(1997, 11, 8),
            day_index=0,
            alive_count=1,
            active_peers=(701,),
            rows=(PeerRow(pid, 701, 43, path_id),),
        )
    )
    writer.finalize({"calendar_start": "1997-11-08"})
    return directory


class TestCorruption:
    def test_bad_registry_magic(self, archive):
        registry = archive / "registry.bin"
        data = bytearray(registry.read_bytes())
        data[:4] = b"XXXX"
        registry.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="magic"):
            ArchiveReader(archive)

    def test_bad_paths_magic(self, archive):
        paths = archive / "paths.bin"
        data = bytearray(paths.read_bytes())
        data[:4] = b"XXXX"
        paths.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="magic"):
            ArchiveReader(archive)

    def test_bad_days_magic(self, archive):
        days = archive / "days.bin"
        data = bytearray(days.read_bytes())
        data[:4] = b"XXXX"
        days.write_bytes(bytes(data))
        reader = ArchiveReader(archive)
        with pytest.raises(ValueError, match="magic"):
            list(reader.iter_days())

    def test_missing_manifest(self, archive):
        (archive / "manifest.json").unlink()
        with pytest.raises(FileNotFoundError):
            ArchiveReader(archive)

    def test_manifest_without_calendar_start(self, archive):
        manifest_path = archive / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["calendar_start"]
        manifest_path.write_text(json.dumps(manifest))
        reader = ArchiveReader(archive)
        with pytest.raises(ValueError, match="calendar_start"):
            list(reader.iter_days())

    def test_intact_archive_reads_fine(self, archive):
        reader = ArchiveReader(archive)
        days = list(reader.iter_days())
        assert len(days) == 1
        assert days[0].rows[0].origin == 43
