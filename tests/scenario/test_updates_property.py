"""Property test: replaying day diffs reconstructs the day state.

For any pair of day records, applying :func:`diff_days`'s updates to
the previous day's (peer, prefix) -> origin map must yield exactly the
next day's map — the invariant that makes archive replay trustworthy
as a streaming workload.
"""

import datetime

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netbase.prefix import Prefix
from repro.scenario.archive import (
    ArchiveReader,
    ArchiveWriter,
    DayRecord,
    PeerRow,
)
from repro.scenario.updates import diff_days

START = datetime.date(1997, 11, 8)
PEERS = (701, 1239, 3561)
NUM_PREFIXES = 6


def day_rows_strategy():
    """Random per-day row sets over a small prefix/peer universe."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=NUM_PREFIXES - 1),
            st.sampled_from(PEERS),
            st.integers(min_value=100, max_value=104),  # origin
        ),
        max_size=12,
        unique_by=lambda row: (row[0], row[1]),
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(day0=day_rows_strategy(), day1=day_rows_strategy())
def test_diff_apply_roundtrip(tmp_path_factory, day0, day1):
    directory = tmp_path_factory.mktemp("prop-archive")
    writer = ArchiveWriter(directory)
    for index in range(NUM_PREFIXES):
        writer.register_prefix(
            Prefix((10 << 24) | (index << 16), 16, strict=False), 42, 0
        )

    def make_record(offset: int, rows) -> DayRecord:
        return DayRecord(
            day=START + datetime.timedelta(days=offset),
            day_index=offset,
            alive_count=NUM_PREFIXES,
            active_peers=PEERS,
            rows=tuple(
                PeerRow(
                    prefix_id,
                    peer,
                    origin,
                    writer.intern_path((peer, origin)),
                )
                for prefix_id, peer, origin in rows
            ),
        )

    record0 = make_record(0, day0)
    record1 = make_record(1, day1)
    writer.write_day(record0)
    writer.write_day(record1)
    writer.finalize({"calendar_start": START.isoformat()})
    reader = ArchiveReader(directory)

    # Apply the diff to day0's route map.
    state = {
        (row.peer_asn, reader.prefix(row.prefix_id)): reader.path(
            row.path_id
        )
        for row in record0.rows
    }
    for _ts, message in diff_days(record0, record1, reader):
        for prefix in message.withdrawn:
            state.pop((message.peer_asn, prefix), None)
        if message.attributes is not None:
            for prefix in message.announced:
                state[(message.peer_asn, prefix)] = tuple(
                    message.attributes.as_path.sequence_tuple()
                )

    expected = {
        (row.peer_asn, reader.prefix(row.prefix_id)): reader.path(
            row.path_id
        )
        for row in record1.rows
    }
    assert state == expected
