"""Tests for the command-line entry points."""

import pytest

from repro.api.cli import main


@pytest.fixture(scope="module")
def cli_archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli") / "archive"
    code = main(["simulate", str(directory), "--scale", "0.01"])
    assert code == 0
    return directory


class TestSimulate:
    def test_writes_archive(self, cli_archive):
        assert (cli_archive / "manifest.json").exists()
        assert (cli_archive / "days.bin").exists()
        assert (cli_archive / "registry.bin").exists()

    def test_summary_printed(self, capsys, tmp_path):
        main(
            ["simulate", str(tmp_path / "a"), "--scale", "0.01", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert "observed_days: 1279" in out


class TestAnalyze:
    def test_produces_report_and_figures(self, cli_archive, tmp_path, capsys):
        out_dir = tmp_path / "analysis"
        code = main(["analyze", str(cli_archive), str(out_dir)])
        assert code == 0
        for name in (
            "figure1.csv",
            "figure3.csv",
            "figure5.csv",
            "figure6.csv",
            "episodes.csv",
            "summary.json",
            "report.txt",
        ):
            assert (out_dir / name).exists(), f"{name} missing"
        printed = capsys.readouterr().out
        assert "MOAS study summary" in printed
        assert "Fig. 2." in printed

    def test_report_roundtrip(self, cli_archive, tmp_path, capsys):
        out_dir = tmp_path / "analysis"
        main(["analyze", str(cli_archive), str(out_dir)])
        capsys.readouterr()
        code = main(["report", str(out_dir)])
        assert code == 0
        assert "MOAS study summary" in capsys.readouterr().out

    def test_report_missing_dir_fails(self, tmp_path, capsys):
        code = main(["report", str(tmp_path / "nonexistent")])
        assert code == 1
        assert "no report" in capsys.readouterr().err
