"""Cross-cutting integration tests: CLI, MRT export, determinism."""

import datetime
import json

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.export import summary_json
from repro.analysis.pipeline import StudyPipeline
from repro.analysis.sources import (
    detections_from_archive,
    detections_from_mrt_files,
)
from repro.api.cli import main
from repro.core.classifier import classify_conflict
from repro.core.detector import DailyConflict
from repro.netbase.prefix import Prefix


class TestCliMrtIntegration:
    def test_cli_mrt_export_feeds_mrt_pipeline(self, tmp_path):
        """An MRT day exported by the CLI parses through the MRT source."""
        archive = tmp_path / "archive"
        code = main(
            [
                "simulate",
                str(archive),
                "--scale",
                "0.01",
                "--mrt-export",
                "1998-04-07",
                "--mrt-export",
                "1998-04-08",
            ]
        )
        assert code == 0
        mrt_files = sorted((archive / "mrt").glob("*.mrt"))
        assert len(mrt_files) == 2

        detections = list(detections_from_mrt_files(mrt_files))
        assert [d.day for d in detections] == [
            datetime.date(1998, 4, 7),
            datetime.date(1998, 4, 8),
        ]
        # The spike day shows far more conflicts than the day after.
        assert detections[0].num_conflicts > 2 * detections[1].num_conflicts

        # And the MRT view agrees with the CDS view for those days.
        by_day = {d.day: d for d in detections_from_archive(archive)}
        for detection in detections:
            cds = by_day[detection.day]
            assert detection.num_conflicts == cds.num_conflicts


class TestPipelineDeterminism:
    def test_identical_runs_identical_results(self, tmp_path):
        archive = tmp_path / "archive"
        main(["simulate", str(archive), "--scale", "0.01"])
        first = StudyPipeline().run(detections_from_archive(archive))
        second = StudyPipeline().run(detections_from_archive(archive))
        assert summary_json(first) == summary_json(second)
        assert json.loads(summary_json(first))["total_conflicts"] == (
            first.total_conflicts
        )


paths = st.lists(
    st.integers(min_value=1, max_value=50), min_size=1, max_size=4
).map(tuple)


class TestClassifierInvariance:
    @given(
        st.dictionaries(
            st.integers(min_value=100, max_value=105),
            st.lists(paths, min_size=1, max_size=3, unique=True),
            min_size=2,
            max_size=4,
        ),
        st.randoms(use_true_random=False),
    )
    def test_classification_invariant_under_origin_order(
        self, by_origin, rng
    ):
        """Shuffling origin order never changes the conflict class."""
        # Force distinct path tails per origin so pairs are classifiable.
        normalized = {
            origin: [tuple(path) + (origin,) for path in path_list]
            for origin, path_list in by_origin.items()
        }
        items = sorted(normalized.items())

        def conflict_with(order):
            return DailyConflict(
                prefix=Prefix.parse("10.0.0.0/8"),
                origins=frozenset(normalized),
                paths_by_origin=tuple(
                    (origin, tuple(sorted(paths_list)))
                    for origin, paths_list in order
                ),
            )

        baseline = classify_conflict(conflict_with(items))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert classify_conflict(conflict_with(shuffled)) is baseline
