"""Fuzz tests: the MRT codec must fail *predictably* on garbage.

A codec that raises ``MrtError`` subclasses on any malformed input can
be wrapped safely; one that leaks ``IndexError``/``struct.error``
cannot.  Hypothesis feeds random and mutated byte strings to every
decoder entry point.
"""

import io

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.mrt.attributes import PathAttributes
from repro.mrt.errors import MrtError
from repro.mrt.reader import MrtReader, decode_record
from repro.mrt.records import (
    Bgp4mpMessage,
    MrtRecord,
    PeerIndexTable,
    RibIpv4Unicast,
    TableDumpRecord,
)

DECODERS = (
    TableDumpRecord.decode_body,
    PeerIndexTable.decode_body,
    RibIpv4Unicast.decode_body,
    Bgp4mpMessage.decode_body,
)


class TestDecoderFuzz:
    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(max_size=300))
    def test_record_decoders_never_leak_raw_errors(self, data):
        for decoder in DECODERS:
            try:
                decoder(data)
            except MrtError:
                pass  # the contract: structured errors only

    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(max_size=300))
    @example(data=b"\x40\x02\x02\x02\x00")  # empty AS_PATH segment
    def test_attribute_decoder_never_leaks(self, data):
        try:
            PathAttributes.decode(data)
        except MrtError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(max_size=400))
    def test_reader_stream_never_leaks(self, data):
        reader = MrtReader(io.BytesIO(data))
        try:
            for record in reader.records():
                decode_record(record)
        except MrtError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(
        flips=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=8,
        )
    )
    def test_bitflipped_valid_record_fails_cleanly(self, flips):
        """Mutate a valid encoded record; decoding either succeeds or
        raises a structured error — never a raw exception."""
        from repro.netbase.aspath import ASPath
        from repro.netbase.prefix import Prefix

        record = TableDumpRecord(
            view_number=0,
            sequence=1,
            prefix=Prefix.parse("10.0.0.0/8"),
            status=1,
            originated_time=0,
            peer_address=1,
            peer_asn=701,
            attributes=PathAttributes(
                as_path=ASPath.from_sequence([701, 42]), next_hop=5
            ),
        )
        data = bytearray(record.encode_body())
        for position in flips:
            data[position % len(data)] ^= 0xFF
        try:
            TableDumpRecord.decode_body(bytes(data))
        except MrtError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(truncate_at=st.integers(min_value=0, max_value=200))
    def test_truncated_valid_stream_fails_cleanly(self, truncate_at):
        from repro.netbase.aspath import ASPath
        from repro.netbase.prefix import Prefix

        record = MrtRecord(
            0,
            12,
            1,
            TableDumpRecord(
                view_number=0,
                sequence=1,
                prefix=Prefix.parse("10.0.0.0/8"),
                status=1,
                originated_time=0,
                peer_address=1,
                peer_asn=701,
                attributes=PathAttributes(
                    as_path=ASPath.from_sequence([701, 42])
                ),
            ).encode_body(),
        )
        data = record.encode()[:truncate_at]
        reader = MrtReader(io.BytesIO(data))
        try:
            list(reader.records())
        except MrtError:
            pass
