"""End-to-end tests: snapshot -> MRT file -> snapshot."""

import datetime

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mrt.errors import MrtDecodeError, MrtTruncatedError
from repro.mrt.reader import MrtReader, read_rib_snapshot
from repro.mrt.writer import write_rib_snapshot
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.netbase.rib import PeerId, RibSnapshot, Route

DAY = datetime.date(2001, 4, 6)


def sample_snapshot() -> RibSnapshot:
    peer_a = PeerId(asn=701)
    peer_b = PeerId(asn=1239)
    return RibSnapshot.from_routes(
        DAY,
        [
            Route(Prefix.parse("10.0.0.0/8"), ASPath.parse("701 42"), peer_a),
            Route(Prefix.parse("10.0.0.0/8"), ASPath.parse("1239 43"), peer_b),
            Route(
                Prefix.parse("192.0.2.0/24"),
                ASPath.parse("701 7018 99"),
                peer_a,
            ),
            Route(
                Prefix.parse("172.16.0.0/12"),
                ASPath.parse("1239 {55,56}"),
                peer_b,
            ),
        ],
    )


def snapshots_equal(left: RibSnapshot, right: RibSnapshot) -> bool:
    left_rows = sorted(
        (route.prefix.sort_key(), str(route.path), route.peer.asn)
        for route in left.iter_routes()
    )
    right_rows = sorted(
        (route.prefix.sort_key(), str(route.path), route.peer.asn)
        for route in right.iter_routes()
    )
    return left_rows == right_rows


class TestRoundtrip:
    @pytest.mark.parametrize("dump_format", ["table_dump", "table_dump_v2"])
    @pytest.mark.parametrize("compress", [False, True])
    def test_roundtrip_formats(self, tmp_path, dump_format, compress):
        snapshot = sample_snapshot()
        path = tmp_path / f"rib.{dump_format}.mrt"
        write_rib_snapshot(
            path, snapshot, dump_format=dump_format, compress=compress
        )
        loaded = read_rib_snapshot(path)
        assert loaded.day == DAY
        assert snapshots_equal(snapshot, loaded)

    def test_day_recovered_from_timestamp(self, tmp_path):
        path = tmp_path / "rib.mrt"
        write_rib_snapshot(path, sample_snapshot())
        assert read_rib_snapshot(path).day == DAY

    def test_explicit_day_override(self, tmp_path):
        path = tmp_path / "rib.mrt"
        write_rib_snapshot(path, sample_snapshot())
        other = datetime.date(1999, 1, 1)
        assert read_rib_snapshot(path, day=other).day == other

    def test_moas_preserved_through_archive(self, tmp_path):
        path = tmp_path / "rib.mrt"
        write_rib_snapshot(path, sample_snapshot())
        loaded = read_rib_snapshot(path)
        assert loaded.origins_of(Prefix.parse("10.0.0.0/8")) == {42, 43}

    def test_as_set_routes_survive(self, tmp_path):
        path = tmp_path / "rib.mrt"
        write_rib_snapshot(path, sample_snapshot())
        loaded = read_rib_snapshot(path)
        routes = loaded.routes_for(Prefix.parse("172.16.0.0/12"))
        assert len(routes) == 1
        assert routes[0].path.ends_in_as_set()


class TestReaderErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.mrt"
        path.write_bytes(b"")
        with pytest.raises(MrtDecodeError, match="no MRT records"):
            read_rib_snapshot(path)

    def test_partial_header(self, tmp_path):
        path = tmp_path / "partial.mrt"
        path.write_bytes(b"\x00" * 5)
        with pytest.raises(MrtTruncatedError, match="header"):
            read_rib_snapshot(path)

    def test_truncated_body(self, tmp_path):
        snapshot = sample_snapshot()
        full = tmp_path / "full.mrt"
        write_rib_snapshot(full, snapshot)
        data = full.read_bytes()
        truncated = tmp_path / "truncated.mrt"
        truncated.write_bytes(data[:-10])
        with pytest.raises(MrtTruncatedError):
            read_rib_snapshot(truncated)

    def test_rib_before_peer_index_rejected(self, tmp_path):
        # Write a v2 file, then strip its PEER_INDEX_TABLE record.
        path = tmp_path / "rib.mrt"
        write_rib_snapshot(path, sample_snapshot())
        with MrtReader(path) as reader:
            records = list(reader.records())
        stripped = tmp_path / "stripped.mrt"
        stripped.write_bytes(
            b"".join(record.encode() for record in records[1:])
        )
        with pytest.raises(MrtDecodeError, match="PEER_INDEX_TABLE"):
            read_rib_snapshot(stripped)

    def test_unknown_record_types_skipped(self, tmp_path):
        from repro.mrt.records import MrtRecord

        path = tmp_path / "mixed.mrt"
        write_rib_snapshot(path, sample_snapshot())
        data = path.read_bytes()
        unknown = MrtRecord(0, 99, 0, b"xx").encode()
        mixed = tmp_path / "with-unknown.mrt"
        mixed.write_bytes(unknown + data)
        loaded = read_rib_snapshot(mixed, day=DAY)
        assert snapshots_equal(loaded, sample_snapshot())


prefix_strategy = st.builds(
    lambda network, length: Prefix(network, length, strict=False),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=8, max_value=32),
)
route_strategy = st.builds(
    Route,
    prefix_strategy,
    st.lists(
        st.integers(min_value=1, max_value=65000), min_size=1, max_size=5
    ).map(ASPath.from_sequence),
    st.sampled_from([PeerId(asn=701), PeerId(asn=1239), PeerId(asn=3561)]),
)


class TestArchiveProperty:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.lists(route_strategy, min_size=1, max_size=30))
    def test_any_snapshot_roundtrips(self, tmp_path, routes):
        snapshot = RibSnapshot.from_routes(DAY, routes)
        path = tmp_path / "prop.mrt"
        write_rib_snapshot(path, snapshot)
        assert snapshots_equal(read_rib_snapshot(path), snapshot)
