"""Test package: tests/mrt."""
