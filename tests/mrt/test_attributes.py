"""Tests for BGP path-attribute encoding/decoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mrt.attributes import PathAttributes, UnknownAttribute
from repro.mrt.constants import (
    ATTR_FLAG_OPTIONAL,
    ATTR_FLAG_TRANSITIVE,
    BgpOrigin,
)
from repro.mrt.errors import MrtDecodeError
from repro.netbase.aspath import ASPath, Segment, SegmentType


def roundtrip(attrs: PathAttributes, asn_size: int = 2) -> PathAttributes:
    return PathAttributes.decode(
        attrs.encode(asn_size=asn_size), asn_size=asn_size
    )


class TestRoundtrip:
    def test_minimal(self):
        attrs = PathAttributes(as_path=ASPath.from_sequence([701, 42]))
        decoded = roundtrip(attrs)
        assert decoded.as_path == attrs.as_path
        assert decoded.origin == BgpOrigin.IGP

    def test_full_attribute_set(self):
        attrs = PathAttributes(
            origin=BgpOrigin.EGP,
            as_path=ASPath.parse("701 7018 {42,43}"),
            next_hop=0xC0000201,
            med=150,
            local_pref=200,
            atomic_aggregate=True,
            aggregator=(7018, 0x0A000001),
            communities=(0x02BD0064, 0xFFFF0000),
        )
        decoded = roundtrip(attrs)
        assert decoded == attrs

    def test_as4_encoding(self):
        attrs = PathAttributes(
            as_path=ASPath.from_sequence([400000, 42]),
            aggregator=(400000, 1),
        )
        decoded = roundtrip(attrs, asn_size=4)
        assert decoded == attrs

    def test_large_asn_rejected_in_2byte_mode(self):
        attrs = PathAttributes(as_path=ASPath.from_sequence([400000]))
        with pytest.raises(MrtDecodeError, match="does not fit"):
            attrs.encode(asn_size=2)

    def test_unknown_attributes_preserved(self):
        unknown = UnknownAttribute(
            flags=ATTR_FLAG_OPTIONAL | ATTR_FLAG_TRANSITIVE,
            type_code=99,
            payload=b"\x01\x02\x03",
        )
        attrs = PathAttributes(
            as_path=ASPath.from_sequence([1]), unknown=(unknown,)
        )
        decoded = roundtrip(attrs)
        assert decoded.unknown == (unknown,)

    def test_extended_length_for_long_payload(self):
        # > 255 communities forces the extended-length flag.
        communities = tuple(range(100))
        attrs = PathAttributes(
            as_path=ASPath.from_sequence([1]), communities=communities
        )
        decoded = roundtrip(attrs)
        assert decoded.communities == communities


class TestDecodeErrors:
    def test_duplicate_attribute_rejected(self):
        attrs = PathAttributes(as_path=ASPath.from_sequence([1]))
        encoded = attrs.encode()
        with pytest.raises(MrtDecodeError, match="duplicate"):
            PathAttributes.decode(encoded + encoded)

    def test_bad_origin_value(self):
        # ORIGIN with value 7 is invalid.
        data = bytes([ATTR_FLAG_TRANSITIVE, 1, 1, 7])
        with pytest.raises(MrtDecodeError, match="ORIGIN"):
            PathAttributes.decode(data)

    def test_bad_origin_length(self):
        data = bytes([ATTR_FLAG_TRANSITIVE, 1, 2, 0, 0])
        with pytest.raises(MrtDecodeError, match="ORIGIN"):
            PathAttributes.decode(data)

    def test_bad_next_hop_length(self):
        data = bytes([ATTR_FLAG_TRANSITIVE, 3, 2, 1, 2])
        with pytest.raises(MrtDecodeError, match="NEXT_HOP"):
            PathAttributes.decode(data)

    def test_truncated_payload(self):
        data = bytes([ATTR_FLAG_TRANSITIVE, 1, 5, 0])
        with pytest.raises(MrtDecodeError):
            PathAttributes.decode(data)

    def test_unknown_well_known_rejected(self):
        # A mandatory (non-optional) attribute we don't know is an error.
        data = bytes([0x40, 77, 1, 0])
        with pytest.raises(MrtDecodeError, match="well-known"):
            PathAttributes.decode(data)

    def test_bad_segment_type(self):
        data = bytes([ATTR_FLAG_TRANSITIVE, 2, 4, 9, 1, 0, 42])
        with pytest.raises(MrtDecodeError, match="segment type"):
            PathAttributes.decode(data)

    def test_empty_segment_rejected(self):
        data = bytes([ATTR_FLAG_TRANSITIVE, 2, 2, 2, 0])
        with pytest.raises(MrtDecodeError, match="empty"):
            PathAttributes.decode(data)

    def test_communities_length_not_multiple_of_four(self):
        data = bytes([ATTR_FLAG_OPTIONAL | ATTR_FLAG_TRANSITIVE, 8, 3, 0, 0, 0])
        with pytest.raises(MrtDecodeError, match="COMMUNITIES"):
            PathAttributes.decode(data)

    def test_atomic_aggregate_payload_rejected(self):
        data = bytes([ATTR_FLAG_TRANSITIVE, 6, 1, 0])
        with pytest.raises(MrtDecodeError, match="ATOMIC_AGGREGATE"):
            PathAttributes.decode(data)


as_paths = st.lists(
    st.one_of(
        st.builds(
            Segment,
            st.just(SegmentType.AS_SEQUENCE),
            st.lists(
                st.integers(min_value=1, max_value=65534),
                min_size=1,
                max_size=6,
            ).map(tuple),
        ),
        st.builds(
            Segment,
            st.just(SegmentType.AS_SET),
            st.lists(
                st.integers(min_value=1, max_value=65534),
                min_size=1,
                max_size=6,
            ).map(tuple),
        ),
    ),
    max_size=4,
).map(ASPath)


class TestAttributeProperties:
    @given(
        as_paths,
        st.sampled_from(list(BgpOrigin)),
        st.one_of(st.none(), st.integers(min_value=0, max_value=0xFFFFFFFF)),
        st.one_of(st.none(), st.integers(min_value=0, max_value=0xFFFFFFFF)),
    )
    def test_roundtrip_property(self, path, origin, next_hop, med):
        attrs = PathAttributes(
            origin=origin, as_path=path, next_hop=next_hop, med=med
        )
        assert roundtrip(attrs) == attrs
