"""Tests for MRT record structures."""

import pytest

from repro.mrt.attributes import PathAttributes
from repro.mrt.constants import MrtType, TableDumpV2Subtype
from repro.mrt.errors import MrtDecodeError
from repro.mrt.records import (
    Bgp4mpMessage,
    MrtRecord,
    PeerEntry,
    PeerIndexTable,
    RibEntry,
    RibIpv4Unicast,
    TableDumpRecord,
)
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix


def make_attrs(*ases: int) -> PathAttributes:
    return PathAttributes(as_path=ASPath.from_sequence(ases), next_hop=1)


class TestMrtRecordEnvelope:
    def test_header_roundtrip(self):
        record = MrtRecord(955497600, MrtType.TABLE_DUMP, 1, b"body")
        encoded = record.encode()
        timestamp, mrt_type, subtype, length = MrtRecord.decode_header(
            encoded[:12]
        )
        assert (timestamp, mrt_type, subtype) == (955497600, 12, 1)
        assert length == 4
        assert encoded[12:] == b"body"


class TestTableDump:
    def test_roundtrip(self):
        record = TableDumpRecord(
            view_number=0,
            sequence=7,
            prefix=Prefix.parse("192.0.2.0/24"),
            status=1,
            originated_time=955497600,
            peer_address=0xC6200001,
            peer_asn=701,
            attributes=make_attrs(701, 42),
        )
        decoded = TableDumpRecord.decode_body(record.encode_body())
        assert decoded == record

    def test_trailing_bytes_rejected(self):
        record = TableDumpRecord(
            view_number=0,
            sequence=0,
            prefix=Prefix.parse("10.0.0.0/8"),
            status=1,
            originated_time=0,
            peer_address=1,
            peer_asn=701,
            attributes=make_attrs(701),
        )
        with pytest.raises(MrtDecodeError, match="trailing"):
            TableDumpRecord.decode_body(record.encode_body() + b"\x00")

    def test_to_record_sets_type(self):
        record = TableDumpRecord(
            view_number=0,
            sequence=0,
            prefix=Prefix.parse("10.0.0.0/8"),
            status=1,
            originated_time=0,
            peer_address=1,
            peer_asn=701,
            attributes=make_attrs(701),
        ).to_record(123)
        assert record.mrt_type == MrtType.TABLE_DUMP
        assert record.timestamp == 123


class TestPeerIndexTable:
    def test_roundtrip(self):
        table = PeerIndexTable(
            collector_bgp_id=0xC6336401,
            view_name="route-views",
            peers=(
                PeerEntry(bgp_id=1, address=0xC6200001, asn=701),
                PeerEntry(bgp_id=2, address=0xC6200002, asn=100000),
            ),
        )
        decoded = PeerIndexTable.decode_body(table.encode_body())
        assert decoded == table

    def test_empty_view_name(self):
        table = PeerIndexTable(collector_bgp_id=1, view_name="", peers=())
        assert PeerIndexTable.decode_body(table.encode_body()) == table

    def test_two_byte_peer_asn_decoded(self):
        # Hand-build a peer entry with type=0 (2-byte ASN).
        body = (
            (1).to_bytes(4, "big")
            + (0).to_bytes(2, "big")  # empty view name
            + (1).to_bytes(2, "big")  # one peer
            + bytes([0x00])  # peer type: IPv4 + 2-byte AS
            + (5).to_bytes(4, "big")
            + (6).to_bytes(4, "big")
            + (701).to_bytes(2, "big")
        )
        table = PeerIndexTable.decode_body(body)
        assert table.peers[0].asn == 701

    def test_ipv6_peer_rejected(self):
        body = (
            (1).to_bytes(4, "big")
            + (0).to_bytes(2, "big")
            + (1).to_bytes(2, "big")
            + bytes([0x01])  # IPv6 flag
        )
        with pytest.raises(MrtDecodeError, match="IPv6"):
            PeerIndexTable.decode_body(body)


class TestRibIpv4Unicast:
    def test_roundtrip(self):
        record = RibIpv4Unicast(
            sequence=3,
            prefix=Prefix.parse("10.1.0.0/17"),
            entries=(
                RibEntry(0, 955497600, make_attrs(701, 42)),
                RibEntry(1, 955497600, make_attrs(1239, 43)),
            ),
        )
        decoded = RibIpv4Unicast.decode_body(record.encode_body())
        assert decoded == record

    def test_default_route(self):
        record = RibIpv4Unicast(
            sequence=0,
            prefix=Prefix.parse("0.0.0.0/0"),
            entries=(RibEntry(0, 0, make_attrs(701)),),
        )
        decoded = RibIpv4Unicast.decode_body(record.encode_body())
        assert decoded.prefix == Prefix.parse("0.0.0.0/0")

    def test_host_route(self):
        record = RibIpv4Unicast(
            sequence=0,
            prefix=Prefix.parse("192.0.2.1/32"),
            entries=(RibEntry(0, 0, make_attrs(701)),),
        )
        assert (
            RibIpv4Unicast.decode_body(record.encode_body()).prefix
            == record.prefix
        )

    def test_bad_prefix_length_rejected(self):
        body = (0).to_bytes(4, "big") + bytes([40])
        with pytest.raises(MrtDecodeError, match="length"):
            RibIpv4Unicast.decode_body(body)

    def test_subtype_constant(self):
        assert RibIpv4Unicast.SUBTYPE == TableDumpV2Subtype.RIB_IPV4_UNICAST


class TestBgp4mp:
    def test_announce_roundtrip(self):
        message = Bgp4mpMessage(
            peer_asn=701,
            local_asn=6447,
            interface_index=0,
            peer_address=0xC6200001,
            local_address=0xC6336401,
            attributes=make_attrs(701, 42),
            announced=(Prefix.parse("10.0.0.0/8"), Prefix.parse("10.1.0.0/16")),
        )
        decoded = Bgp4mpMessage.decode_body(message.encode_body())
        assert decoded == message

    def test_withdraw_roundtrip(self):
        message = Bgp4mpMessage(
            peer_asn=701,
            local_asn=6447,
            interface_index=0,
            peer_address=1,
            local_address=2,
            withdrawn=(Prefix.parse("192.0.2.0/24"),),
        )
        decoded = Bgp4mpMessage.decode_body(message.encode_body())
        assert decoded == message
        assert decoded.attributes is None

    def test_bad_marker_rejected(self):
        message = Bgp4mpMessage(
            peer_asn=701,
            local_asn=6447,
            interface_index=0,
            peer_address=1,
            local_address=2,
            announced=(Prefix.parse("10.0.0.0/8"),),
            attributes=make_attrs(701),
        )
        body = bytearray(message.encode_body())
        # The BGP4MP header (ASNs, interface, AFI, two addresses) is 16
        # bytes; the BGP marker starts right after it.
        body[16] = 0x00  # corrupt first marker byte
        with pytest.raises(MrtDecodeError, match="marker"):
            Bgp4mpMessage.decode_body(bytes(body))
