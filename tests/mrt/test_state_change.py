"""Tests for BGP4MP_STATE_CHANGE records and session-loss semantics."""

import pytest

from repro.core.realtime import AlertKind, StreamingMoasDetector
from repro.mrt.attributes import PathAttributes
from repro.mrt.errors import MrtDecodeError
from repro.mrt.reader import decode_record
from repro.mrt.records import Bgp4mpMessage, Bgp4mpStateChange, BgpFsmState
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix

PREFIX = Prefix.parse("10.0.0.0/8")


def state_change(
    peer: int,
    old: BgpFsmState = BgpFsmState.ESTABLISHED,
    new: BgpFsmState = BgpFsmState.IDLE,
) -> Bgp4mpStateChange:
    return Bgp4mpStateChange(
        peer_asn=peer,
        local_asn=6447,
        interface_index=0,
        peer_address=1,
        local_address=2,
        old_state=old,
        new_state=new,
    )


def announce(peer: int, *path: int) -> Bgp4mpMessage:
    return Bgp4mpMessage(
        peer_asn=peer,
        local_asn=6447,
        interface_index=0,
        peer_address=1,
        local_address=2,
        attributes=PathAttributes(as_path=ASPath.from_sequence(path)),
        announced=(PREFIX,),
    )


class TestCodec:
    def test_roundtrip(self):
        change = state_change(701)
        decoded = Bgp4mpStateChange.decode_body(change.encode_body())
        assert decoded == change

    def test_decode_via_record_envelope(self):
        record = state_change(701).to_record(12345)
        decoded = decode_record(record)
        assert isinstance(decoded, Bgp4mpStateChange)
        assert decoded.peer_asn == 701

    def test_bad_state_value_rejected(self):
        body = bytearray(state_change(701).encode_body())
        body[-1] = 99
        with pytest.raises(MrtDecodeError, match="FSM"):
            Bgp4mpStateChange.decode_body(bytes(body))

    def test_trailing_bytes_rejected(self):
        body = state_change(701).encode_body() + b"\x00"
        with pytest.raises(MrtDecodeError, match="trailing"):
            Bgp4mpStateChange.decode_body(body)

    def test_session_lost_predicate(self):
        assert state_change(701).session_lost()
        assert not state_change(
            701, old=BgpFsmState.ACTIVE, new=BgpFsmState.ESTABLISHED
        ).session_lost()


class TestSessionLossSemantics:
    def test_session_loss_ends_conflict(self):
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, 701, 42))
        detector.process_update(announce(1239, 1239, 43))
        assert detector.in_moas(PREFIX)
        alerts = detector.process_state_change(state_change(1239))
        assert [alert.kind for alert in alerts] == [AlertKind.MOAS_ENDED]
        assert detector.origins_of(PREFIX) == {42}

    def test_non_loss_transition_ignored(self):
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, 701, 42))
        alerts = detector.process_state_change(
            state_change(
                701, old=BgpFsmState.IDLE, new=BgpFsmState.CONNECT
            )
        )
        assert alerts == []
        assert detector.origins_of(PREFIX) == {42}

    def test_mixed_stream(self):
        detector = StreamingMoasDetector()
        stream = iter(
            [
                (1, announce(701, 701, 42)),
                (2, announce(1239, 1239, 43)),
                (3, state_change(1239)),
            ]
        )
        kinds = [alert.kind for alert in detector.process_stream(stream)]
        assert kinds == [AlertKind.MOAS_STARTED, AlertKind.MOAS_ENDED]
